"""Tests for the 27-workload Use-Case-2 suite."""

import pytest

from repro.core.attributes import PatternType, RWChar
from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess
from repro.dram.mapping import DramGeometry
from repro.workloads.suite import (
    BY_NAME,
    LOW_HEADROOM,
    RANDOM_DOMINATED,
    SUITE,
    StructureSpec,
    SuiteWorkload,
    graph,
    stream,
    table,
)
from repro.xos.loader import OperatingSystem


class TestSpecs:
    def test_twenty_seven_workloads(self):
        assert len(SUITE) == 27
        assert len(BY_NAME) == 27

    def test_special_classes_present(self):
        for name in LOW_HEADROOM + RANDOM_DOMINATED:
            assert name in BY_NAME

    def test_structure_validation(self):
        with pytest.raises(ConfigurationError):
            StructureSpec("x", 16, PatternType.REGULAR)  # < one line
        with pytest.raises(ConfigurationError):
            StructureSpec("x", 1 << 20, PatternType.REGULAR, intensity=0)

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            SuiteWorkload("w", ())
        s = stream("dup", 1 << 20, 100)
        with pytest.raises(ConfigurationError):
            SuiteWorkload("w", (s, s))

    def test_helpers(self):
        assert stream("s", 1 << 20, 10).pattern is PatternType.REGULAR
        assert table("t", 1 << 20, 10).pattern is PatternType.NON_DET
        assert graph("g", 1 << 20, 10).pattern is PatternType.IRREGULAR

    def test_atom_stride_only_for_regular(self):
        assert stream("s", 1 << 20, 10).atom_stride == 64
        assert table("t", 1 << 20, 10).atom_stride is None

    def test_footprints_memory_intensive(self):
        # Every workload must dwarf the scaled LLC (128 KB).
        for w in SUITE:
            assert w.footprint >= 4 << 20, w.name


def synthetic_bases(workload):
    bases, cursor = {}, 0x100000
    for s in workload.structures:
        bases[s.name] = cursor
        cursor += s.size_bytes + 4096
    return bases


class TestTraceGeneration:
    def test_deterministic(self):
        w = BY_NAME["lbm"]
        bases = synthetic_bases(w)
        a = [(e.vaddr, e.is_write) for e in w.trace(bases)]
        b = [(e.vaddr, e.is_write) for e in w.trace(bases)]
        assert a == b

    def test_access_count(self):
        w = BY_NAME["sc"]
        assert sum(1 for _ in w.trace(synthetic_bases(w))) == w.accesses

    def test_addresses_inside_structures(self):
        w = BY_NAME["spmv"]
        bases = synthetic_bases(w)
        spans = {s.name: (bases[s.name], bases[s.name] + s.size_bytes)
                 for s in w.structures}
        for ev in w.trace(bases):
            assert any(lo <= ev.vaddr < hi for lo, hi in spans.values())

    def test_intensity_drives_mix(self):
        w = BY_NAME["mcf"]  # nodes 230 vs arcs 40
        bases = synthetic_bases(w)
        nodes_lo = bases["nodes"]
        nodes_hi = nodes_lo + w.structures[0].size_bytes
        in_nodes = sum(1 for e in w.trace(bases)
                       if nodes_lo <= e.vaddr < nodes_hi)
        frac = in_nodes / w.accesses
        assert 0.7 < frac < 0.95

    def test_read_only_structure_never_written(self):
        w = BY_NAME["kmeans"]  # features is READ_ONLY
        bases = synthetic_bases(w)
        lo = bases["features"]
        hi = lo + w.structures[0].size_bytes
        assert w.structures[0].rw is RWChar.READ_ONLY
        for ev in w.trace(bases):
            if lo <= ev.vaddr < hi:
                assert not ev.is_write

    def test_stream_structure_is_sequential(self):
        w = BY_NAME["sc"]  # single stream
        bases = synthetic_bases(w)
        addrs = [e.vaddr for e in w.trace(bases)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        # Sequential modulo wraparound.
        size = w.structures[0].size_bytes
        assert deltas <= {64, 64 - size}

    def test_irregular_is_repeatable(self):
        w = BY_NAME["bfsRod"]
        bases = synthetic_bases(w)
        edges = [e.vaddr for e in w.trace(bases)
                 if bases["edges"] <= e.vaddr
                 < bases["edges"] + w.structures[0].size_bytes]
        n = len(edges)
        # The shuffled order cycles: the first visit sequence repeats.
        period = w.structures[0].size_bytes // 64
        if n > period:
            assert edges[0] == edges[period]

    def test_seed_override(self):
        w = BY_NAME["lbm"]
        bases = synthetic_bases(w)
        a = [e.vaddr for e in w.trace(bases, seed=1)]
        b = [e.vaddr for e in w.trace(bases, seed=2)]
        assert a != b


class TestInstantiation:
    def test_instantiate_maps_and_activates(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 26))
        proc = osys.create_process()
        w = BY_NAME["kmeans"]
        bases = w.instantiate(proc)
        assert set(bases) == {s.name for s in w.structures}
        active = proc.xmem.active_atoms()
        assert len(active) == len(w.structures)
        # Every structure's base VA resolves to its atom via the AMU.
        for s in w.structures:
            pa = proc.translate(bases[s.name])
            atom = proc.xmem.atom_for_paddr(pa)
            assert atom is not None
            assert atom.name == f"{w.name}.{s.name}"

    def test_instantiate_with_placement(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 26),
                               allocator="bank_target")
        proc = osys.create_process()
        w = BY_NAME["lbm"]  # two hot streams -> isolation expected
        w.instantiate(proc)
        assert proc.placement is not None
        assert proc.placement.isolated
