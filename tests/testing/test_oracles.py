"""The reference models agree with the optimized ones by construction.

These are directed unit tests of the oracles themselves -- the fuzz
lanes (:mod:`repro.testing.fuzz`) add randomized coverage on top.
"""

import random

from repro.cpu.engine import TraceEngine
from repro.cpu.trace import PackedTrace, TraceBuilder
from repro.dram.system import DramSystem
from repro.mem.cache import Cache
from repro.testing.generators import GenConfig, generate_lines, generate_trace
from repro.testing.oracles import (
    ReferenceCache,
    ReferenceDram,
    ReferenceEngine,
    ToyMemory,
)


class TestReferenceCacheVsCache:
    def drive(self, seed, sets=4, ways=4, quota=0.75, ops=600):
        rng = random.Random(seed)
        cache = Cache("T", sets * ways * 64, ways, pin_quota=quota)
        ref = ReferenceCache(sets, ways, pin_quota=quota)
        addrs = generate_lines(GenConfig(seed=seed, region_bytes=1 << 12),
                               count=ops)
        for addr in addrs:
            roll = rng.random()
            if roll < 0.6:
                is_write = rng.random() < 0.3
                assert (cache.access(addr, is_write).hit
                        == ref.access(addr, is_write))
            elif roll < 0.9:
                dirty = rng.random() < 0.4
                pin = rng.random() < 0.2
                wb_c = cache.fill(addr, dirty=dirty, pinned=pin)
                wb_r = ref.fill(addr, dirty=dirty, pinned=pin)
                assert wb_c == wb_r
            else:
                assert cache.unpin_all() == ref.unpin_all()
        return cache, ref

    def test_counters_and_state_match(self):
        for seed in range(6):
            cache, ref = self.drive(seed)
            assert cache.stats.evictions == ref.evictions
            assert cache.stats.writebacks == ref.writebacks
            assert cache.stats.pin_refusals == ref.pin_refusals
            assert cache.pinned_lines == ref.pinned_lines()
            assert cache.resident_lines == len(ref.resident_set())
            for line in ref.resident_set():
                assert cache.probe(line)

    def test_full_quota_never_deadlocks(self):
        cache, ref = self.drive(99, ways=2, quota=1.0, ops=400)
        assert cache.stats.evictions == ref.evictions

    def test_resident_fill_keeps_recency(self):
        """A flag-merging fill must not promote: the victim order is
        decided by demand accesses only (both models agree)."""
        ref = ReferenceCache(1, 2)
        ref.fill(0)          # tag 0 (LRU after next fill)
        ref.fill(64)         # tag 1
        ref.fill(0, dirty=True)   # resident: merge, no promotion
        ref.fill(128)        # evicts tag 0, the still-oldest line
        assert ref.resident_set() == {64, 128}
        assert ref.writebacks == 1


class TestReferenceEngineVsTraceEngine:
    def build_trace(self, seed, length=300):
        events, packed = generate_trace(GenConfig(seed=seed, length=length))
        return events, packed

    def test_bit_identical_stats(self):
        for seed in range(5):
            events, packed = self.build_trace(seed)
            opt = TraceEngine(ToyMemory(seed), issue_width=4, window=4)
            ref = ReferenceEngine(ToyMemory(seed), issue_width=4, window=4)
            a = opt.run(list(events))
            b = ref.run(list(events))
            assert a == b

    def test_packed_three_way(self):
        events, packed = self.build_trace(21)
        a = TraceEngine(ToyMemory(3), window=2).run(list(events))
        b = TraceEngine(ToyMemory(3), window=2).run(packed)
        c = ReferenceEngine(ToyMemory(3), window=2).run(packed)
        assert a == b == c

    def test_window_one_serializes(self):
        events, _ = self.build_trace(8)
        one = ReferenceEngine(ToyMemory(8, miss_rate=1.0), window=1)
        wide = ReferenceEngine(ToyMemory(8, miss_rate=1.0), window=64)
        assert one.run(list(events)).cycles >= wide.run(list(events)).cycles


class TestReferenceDramVsDramSystem:
    def test_fifo_identical(self):
        for mapping in ("scheme1", "scheme2", "xmem_interleaved"):
            opt = DramSystem(mapping=mapping)
            ref = ReferenceDram(mapping=mapping)
            rng = random.Random(5)
            now = 0.0
            for _ in range(400):
                paddr = rng.randrange(1 << 26) & ~63
                is_write = rng.random() < 0.3
                res = opt.access(paddr, now, is_write)
                outcome, latency, done = ref.access(paddr, now, is_write)
                assert res.outcome.value == outcome
                assert res.latency == latency
                assert res.completes_at == done
                now += rng.randrange(0, 40) / 4.0
            assert opt.stats.reads == ref.reads
            assert opt.stats.writes == ref.writes
            assert opt.stats.read_latency_sum == ref.read_latency_sum
            assert opt.stats.row_hits == ref.row_hits
            assert opt.stats.row_conflicts == ref.row_conflicts


class TestToyMemory:
    def test_same_seed_same_stream(self):
        a, b = ToyMemory(4), ToyMemory(4)
        for i in range(200):
            assert a.access(i * 64, False, float(i)) \
                == b.access(i * 64, False, float(i))

    def test_misses_exceed_pipeline_threshold(self):
        mem = ToyMemory(1, miss_rate=1.0)
        completes, to_memory = mem.access(0, False, 0.0)
        assert to_memory
        assert completes > TraceEngine.PIPELINED_LATENCY
