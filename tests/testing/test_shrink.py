"""The delta-debugging shrinker."""

import pytest

from repro.testing.shrink import shrink


def test_rejects_passing_input():
    with pytest.raises(ValueError):
        shrink([1, 2, 3], lambda items: False)


def test_single_culprit_isolated():
    items = list(range(100))
    result = shrink(items, lambda c: 42 in c)
    assert result == [42]


def test_pair_culprit_isolated():
    items = list(range(60))
    result = shrink(items, lambda c: 7 in c and 51 in c)
    assert sorted(result) == [7, 51]


def test_order_dependent_predicate():
    """Subsequence order is preserved while shrinking."""
    items = list(range(40))
    result = shrink(items,
                    lambda c: 5 in c and 30 in c
                    and c.index(5) < c.index(30))
    assert result == [5, 30]


def test_count_predicate():
    items = list(range(50))
    result = shrink(items, lambda c: len(c) >= 10)
    assert len(result) == 10


def test_budget_limits_calls():
    calls = []

    def fails(candidate):
        calls.append(1)
        return 0 in candidate

    shrink(list(range(1000)), fails, budget=20)
    # The initial confirmation plus at most `budget` probes.
    assert len(calls) <= 21


def test_deterministic():
    items = list(range(80))

    def fails(c):
        return len([x for x in c if x % 3 == 0]) >= 5

    result = shrink(items, fails)
    assert result == shrink(items, fails)
    assert len(result) == 5
