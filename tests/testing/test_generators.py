"""The workload generators: determinism and structural validity."""

import pytest

from repro.cpu.trace import MemAccess, Work, XMemOp
from repro.testing.generators import (
    CHUNK,
    GenConfig,
    generate_lines,
    generate_requests,
    generate_trace,
    setup_atoms,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        cfg = GenConfig(seed=7, atoms=3)
        events_a, packed_a = generate_trace(cfg)
        events_b, packed_b = generate_trace(cfg)
        assert events_a == events_b
        assert list(packed_a.vaddr) == list(packed_b.vaddr)
        assert list(packed_a.meta) == list(packed_b.meta)
        assert packed_a.xmem == packed_b.xmem

    def test_different_seeds_differ(self):
        a, _ = generate_trace(GenConfig(seed=1))
        b, _ = generate_trace(GenConfig(seed=2))
        assert a != b

    def test_lines_and_requests_deterministic(self):
        cfg = GenConfig(seed=11)
        assert generate_lines(cfg) == generate_lines(cfg)
        assert generate_requests(cfg) == generate_requests(cfg)


class TestTraceShape:
    def test_packed_equals_object_stream(self):
        cfg = GenConfig(seed=5, atoms=4, length=300)
        events, packed = generate_trace(cfg)
        assert list(packed.events()) == events

    def test_dense_length_honored(self):
        cfg = GenConfig(seed=3, length=250)
        events, packed = generate_trace(cfg)
        dense = [e for e in events if not isinstance(e, XMemOp)]
        assert len(dense) == 250
        assert len(packed.vaddr) == 250

    def test_no_atoms_means_no_xmem_ops(self):
        events, packed = generate_trace(GenConfig(seed=9, atoms=0))
        assert not any(isinstance(e, XMemOp) for e in events)
        assert len(packed.xmem) == 0

    def test_churn_emits_xmem_ops(self):
        events, _ = generate_trace(
            GenConfig(seed=2, atoms=4, churn=0.9, length=400))
        assert any(isinstance(e, XMemOp) for e in events)

    def test_addresses_line_aligned_and_in_regions(self):
        cfg = GenConfig(seed=13, length=500)
        events, _ = generate_trace(cfg)
        lo = cfg.base
        hi = cfg.base + cfg.regions * cfg.region_bytes
        for ev in events:
            if isinstance(ev, MemAccess):
                assert ev.vaddr % cfg.line_bytes == 0
                assert lo <= ev.vaddr < hi

    def test_work_events_bounded(self):
        events, _ = generate_trace(GenConfig(seed=17, work_frac=0.5))
        works = [e for e in events if isinstance(e, Work)]
        assert works
        assert all(1 <= w.count <= GenConfig.max_work for w in works)


class TestChurnValidity:
    def test_unmap_targets_mapped_ranges(self):
        """Every unmap names a range some earlier map/remap installed."""
        events, _ = generate_trace(
            GenConfig(seed=23, atoms=3, churn=0.9, length=600))
        mapped = {}
        for ev in events:
            if not isinstance(ev, XMemOp):
                continue
            if ev.method == "atom_map":
                atom, start, size = ev.args
                mapped.setdefault(atom, []).append((start, size))
            elif ev.method == "atom_remap":
                atom, start, size = ev.args
                mapped[atom] = [(start, size)]
            elif ev.method == "atom_unmap":
                atom, start, size = ev.args
                assert (start, size) in mapped.get(atom, [])
                mapped[atom].remove((start, size))

    def test_spans_chunk_aligned(self):
        events, _ = generate_trace(
            GenConfig(seed=29, atoms=3, churn=0.9, length=600))
        for ev in events:
            if isinstance(ev, XMemOp) and len(ev.args) == 3:
                _, start, size = ev.args
                assert start % CHUNK == 0
                assert size % CHUNK == 0 and size > 0


class TestRequests:
    def test_sorted_and_quantized(self):
        reqs = generate_requests(GenConfig(seed=31), count=300)
        assert len(reqs) == 300
        arrivals = [a for _, a, _ in reqs]
        assert arrivals == sorted(arrivals)
        # 0.25-cycle quantization: exact in binary floating point.
        assert all((a * 4) == int(a * 4) for a in arrivals)


class TestSetupAtoms:
    def test_ids_deterministic(self):
        from repro.sim import build_xmem, scaled_config

        cfg = GenConfig(atoms=5)
        a = setup_atoms(build_xmem(scaled_config(32)).xmemlib, cfg)
        b = setup_atoms(build_xmem(scaled_config(32)).xmemlib, cfg)
        assert a == b
        assert len(a) == 5

    def test_zero_atoms_no_calls(self):
        class Boom:
            def create_atom(self, *a, **k):
                raise AssertionError("should not be called")

        assert setup_atoms(Boom(), GenConfig(atoms=0)) == []


@pytest.mark.parametrize("mix", [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
def test_single_phase_mixes_run(mix):
    events, packed = generate_trace(GenConfig(seed=41, mix=mix))
    assert list(packed.events()) == events
