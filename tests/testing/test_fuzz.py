"""The differential fuzz loop: lanes, shrinking, corpus, canaries."""

import json
from pathlib import Path

import pytest

from repro.cpu.trace import MemAccess, Work, XMemOp
from repro.mem.replacement import LRUPolicy
from repro.testing.fuzz import (
    LANES,
    case_rng,
    event_from_json,
    event_to_json,
    load_reproducer,
    replay,
    run_case,
    run_fuzz,
    shrink_failure,
    write_reproducer,
)


class TestEventJson:
    @pytest.mark.parametrize("ev", [
        MemAccess(0x1000, False, 0),
        MemAccess(0x2040, True, 3),
        Work(7),
        XMemOp("atom_activate", 2),
        XMemOp("atom_map", 1, 0x4000, 1024),
    ])
    def test_round_trip(self, ev):
        data = json.loads(json.dumps(event_to_json(ev)))
        assert event_from_json(data) == ev

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            event_from_json(["?", 1])


class TestLaneContracts:
    @pytest.mark.parametrize("name", sorted(LANES))
    def test_make_is_deterministic(self, name):
        lane = LANES[name]
        params_a, items_a = lane.make(case_rng(0, 3), 80)
        params_b, items_b = lane.make(case_rng(0, 3), 80)
        assert params_a == params_b
        assert items_a == items_b

    @pytest.mark.parametrize("name", sorted(LANES))
    def test_items_json_round_trip(self, name):
        lane = LANES[name]
        _, items = lane.make(case_rng(1, 5), 60)
        data = json.loads(json.dumps(lane.to_json(items)))
        assert lane.from_json(data) == items

    @pytest.mark.parametrize("name", sorted(LANES))
    def test_clean_case_passes(self, name):
        lane = LANES[name]
        params, items = lane.make(case_rng(2, 9), 80)
        assert lane.fail(params, items) is None


class TestRunFuzz:
    def test_small_sweep_clean(self):
        report = run_fuzz(cases=10, seed=0, length=80)
        assert report.ok
        assert report.cases == 10
        assert sum(report.per_lane.values()) == 10
        assert set(report.per_lane) == set(LANES)

    def test_lane_filter(self):
        report = run_fuzz(cases=4, seed=1, length=60, lanes=["cache"])
        assert report.per_lane == {"cache": 4}

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="unknown lanes"):
            run_fuzz(cases=1, lanes=["nope"])

    def test_run_case_deterministic(self):
        lane = LANES["dram"]
        a = run_case(lane, seed=0, case_index=2, length=60)
        b = run_case(lane, seed=0, case_index=2, length=60)
        assert a == b  # both None: the models agree


def _break_lru(mp):
    """The CI mutation canary, in-process: evict MRU instead of LRU."""

    def broken_victim(self, set_idx, candidates):
        return max(candidates, key=self._stamp[set_idx].__getitem__)

    mp.setattr(LRUPolicy, "victim", broken_victim)


class TestMutationCanary:
    def test_cache_lane_catches_broken_lru(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_lru(mp)
            report = run_fuzz(cases=20, seed=0, length=200,
                              lanes=["cache"], corpus_dir=tmp_path)
            assert not report.ok
            # Every reproducer shrinks to a readable handful of ops.
            assert all(len(f.items) <= 32 for f in report.failures)
            assert all(len(f.items) < f.original_size
                       for f in report.failures)
            assert report.corpus_paths
            # While the mutant is live the reproducer still fails...
            assert replay(report.corpus_paths[0]) is not None
        # ...and with the real LRU restored it passes (regression mode).
        assert replay(report.corpus_paths[0]) is None

    def test_packed_lane_catches_engine_skew(self):
        """A packed-loop-only off-by-one diverges from the object loop."""
        from repro.cpu.engine import TraceEngine

        real = TraceEngine.run_packed

        def skewed(self, trace):
            stats = real(self, trace)
            stats.instructions += 1
            return stats

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(TraceEngine, "run_packed", skewed)
            report = run_fuzz(cases=4, seed=0, length=80,
                              lanes=["packed", "engine"])
            assert not report.ok

    def test_vector_lane_catches_vector_drift(self):
        """A vector-tier-only counter skew diverges from both exact
        references (and only trips the vector lane, not packed)."""
        from repro.cpu import vector_engine

        real = vector_engine.run_vector

        def skewed(engine, trace):
            stats = real(engine, trace)
            stats.misses_to_memory += 1
            return stats

        with pytest.MonkeyPatch.context() as mp:
            # tiers.run_tier resolves run_vector through the module
            # attribute at call time, so patching the module works.
            mp.setattr(vector_engine, "run_vector", skewed)
            report = run_fuzz(cases=4, seed=0, length=80,
                              lanes=["vector"])
            assert not report.ok
            assert all(f.lane == "vector" for f in report.failures)
            clean = run_fuzz(cases=2, seed=0, length=80,
                             lanes=["packed"])
            assert clean.ok
        assert run_fuzz(cases=2, seed=0, length=80,
                        lanes=["vector"]).ok

    def test_reference_dram_catches_timing_drift(self):
        """Perturbing the bank busy bookkeeping trips the DRAM lane."""
        from repro.dram.bank import Bank

        lane = LANES["dram"]
        params, items = lane.make(case_rng(0, 3), 120)
        real = Bank.access

        def drifted(self, row, start, timing, force_hit=False):
            result = real(self, row, start, timing, force_hit)
            self.busy_until += 0.5
            return result

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Bank, "access", drifted)
            assert lane.fail(params, items) is not None
        assert lane.fail(params, items) is None


class TestCheckedInCorpus:
    """Every committed reproducer must replay clean: each documents a
    historical (or synthetic) divergence whose fix must not regress."""

    CORPUS = Path(__file__).parent / "corpus"

    def test_corpus_exists(self):
        assert sorted(self.CORPUS.glob("*.json"))

    @pytest.mark.parametrize(
        "path",
        sorted((Path(__file__).parent / "corpus").glob("*.json")),
        ids=lambda p: p.name)
    def test_replays_clean(self, path):
        assert replay(path) is None


class TestShrinkAndCorpus:
    def _failure(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_lru(mp)
            for i in range(40):
                failure = run_case(LANES["cache"], seed=0, case_index=i,
                                   length=200)
                if failure is not None:
                    return shrink_failure(failure)
        pytest.fail("broken LRU never diverged in 40 cases")

    def test_reproducer_document_schema(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_lru(mp)
            failure = self._failure(tmp_path)
            path = write_reproducer(tmp_path, failure)
            doc = json.loads(path.read_text())
        assert sorted(doc) == ["case_index", "error", "items", "lane",
                               "original_size", "params"]
        assert doc["lane"] == "cache"
        assert doc["original_size"] >= len(doc["items"])

    def test_load_round_trips(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_lru(mp)
            failure = self._failure(tmp_path)
            path = write_reproducer(tmp_path, failure)
            lane, params, items = load_reproducer(path)
        assert lane.name == "cache"
        assert params == failure.params
        assert items == failure.items
