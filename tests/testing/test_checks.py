"""The REPRO_CHECK invariant hooks: installation, firing, zero cost."""

import pytest

from repro.testing import checks
from repro.testing.checks import CheckError
from repro.testing.generators import GenConfig, generate_trace
from repro.testing.oracles import ToyMemory


@pytest.fixture
def checked(monkeypatch):
    monkeypatch.setenv(checks.ENV_VAR, "1")


@pytest.fixture
def unchecked(monkeypatch):
    monkeypatch.delenv(checks.ENV_VAR, raising=False)


class TestEnabled:
    def test_default_off(self, unchecked):
        assert not checks.enabled()

    def test_zero_off(self, monkeypatch):
        monkeypatch.setenv(checks.ENV_VAR, "0")
        assert not checks.enabled()

    def test_one_on(self, checked):
        assert checks.enabled()


class TestCacheHooks:
    def make(self):
        from repro.mem.cache import Cache

        return Cache("T", 4096, 4)

    def test_wrappers_installed_only_when_enabled(self, checked):
        cache = self.make()
        assert "access" in cache.__dict__
        assert "fill" in cache.__dict__
        assert "fill_absent" in cache.__dict__
        assert "unpin_all" in cache.__dict__
        assert "invalidate_all" in cache.__dict__

    def test_no_wrappers_when_disabled(self, unchecked):
        cache = self.make()
        assert "access" not in cache.__dict__
        assert "fill" not in cache.__dict__

    def test_clean_operation_passes(self, checked):
        cache = self.make()
        for i in range(200):
            addr = (i * 7 % 40) * 64
            if not cache.access(addr, i % 3 == 0).hit:
                cache.fill(addr, dirty=i % 3 == 0, pinned=i % 5 == 0)
        cache.unpin_all()
        cache.invalidate_all()

    def test_corrupt_valid_count_fires(self, checked):
        cache = self.make()
        cache.fill(0)
        cache._valid_counts[0] += 1
        with pytest.raises(CheckError, match="valid count"):
            cache.access(0, False)

    def test_corrupt_pinned_count_fires(self, checked):
        cache = self.make()
        cache.fill(0, pinned=True)
        cache._pinned_counts[0] += 1
        with pytest.raises(CheckError, match="pinned count"):
            cache.access(0, False)

    def test_duplicate_tag_fires(self, checked):
        cache = self.make()
        cache.fill(0)
        cache._tags[0][1] = cache._tags[0][0]
        cache._valid_counts[0] = 2
        with pytest.raises(CheckError, match="duplicate"):
            cache.access(0, False)

    def test_quota_violation_fires(self, checked):
        cache = self.make()
        cache.fill(0)
        # Pin all four ways behind the quota's back (quota allows 3).
        for way in range(4):
            cache._pinned[0][way] = True
            cache._tags[0][way] = way + 1
        cache._valid_counts[0] = 4
        cache._pinned_counts[0] = 4
        with pytest.raises(CheckError, match="quota"):
            cache.access(64 * 0, False)

    def test_aggregate_check_on_unpin(self, checked):
        cache = self.make()
        cache.fill(0, pinned=True)
        assert cache.unpin_all() == 1


class TestMshrHooks:
    def make(self, entries=4):
        from repro.mem.mshr import MSHRFile

        return MSHRFile(entries)

    def test_wrapper_installed_only_when_enabled(self, checked):
        assert "reserve" in self.make().__dict__

    def test_no_wrapper_when_disabled(self, unchecked):
        assert "reserve" not in self.make().__dict__

    def test_clean_operation_passes(self, checked):
        mshr = self.make(2)
        assert mshr.reserve(0.0, 100.0) == 0.0
        assert mshr.reserve(0.0, 200.0) == 0.0
        # Full: the third reservation stalls to the oldest completion.
        assert mshr.reserve(0.0, 300.0) == 100.0

    def test_over_capacity_fires(self, checked):
        mshr = self.make(2)
        # Overfill behind reserve's back: one pop cannot restore the
        # bound, so the checker must trip.
        mshr._completions.extend([50.0, 60.0, 70.0])
        with pytest.raises(CheckError, match="over capacity"):
            mshr.reserve(0.0, 80.0)


class TestEngineHooks:
    def make_engine(self, **kw):
        from repro.cpu.engine import TraceEngine

        return TraceEngine(ToyMemory(0), **kw)

    def test_flag_follows_env(self, checked):
        assert self.make_engine()._check

    def test_flag_off_by_default(self, unchecked):
        assert not self.make_engine()._check

    def test_clean_runs_pass_object_and_packed(self, checked):
        events, packed = generate_trace(GenConfig(seed=1, length=200))
        self.make_engine(window=2).run(list(events))
        self.make_engine(window=2).run(packed)

    def test_inconsistent_stats_fire(self):
        from repro.cpu.engine import EngineStats

        engine = self.make_engine()
        bad = EngineStats(cycles=10.0, instructions=4, mem_accesses=3,
                          xmem_instructions=2)
        with pytest.raises(CheckError, match="exceed total"):
            checks.check_engine_run(engine, bad)

    def test_too_fast_retirement_fires(self):
        from repro.cpu.engine import EngineStats

        engine = self.make_engine(issue_width=4)
        bad = EngineStats(cycles=1.0, instructions=1000)
        with pytest.raises(CheckError, match="retired"):
            checks.check_engine_run(engine, bad)


class TestSchedulerHooks:
    def make(self):
        from repro.dram.scheduler import FRFCFSScheduler
        from repro.dram.system import DramSystem

        return FRFCFSScheduler(DramSystem())

    def test_flag_follows_env(self, checked):
        assert self.make()._check

    def test_clean_service_passes(self, checked):
        from repro.dram.scheduler import Request
        from repro.testing.generators import generate_requests

        reqs = [Request(paddr=p, arrival=a, is_write=w, req_id=i)
                for i, (p, a, w) in enumerate(
                    generate_requests(GenConfig(seed=6), count=150))]
        completions = self.make().service(reqs)
        assert len(completions) == 150

    def test_bypass_cap_fires(self):
        with pytest.raises(CheckError, match="starvation"):
            checks.check_scheduler_bypass(65, 64, None)

    def test_bypass_under_cap_passes(self):
        checks.check_scheduler_bypass(64, 64, None)

    def test_age_cap_forces_front_service(self, checked):
        """An adversarial row-hit picker cannot starve the oldest
        request past the cap -- and the armed checker agrees."""
        from repro.dram.scheduler import Request

        sched = self.make()
        sched.starvation_cap = 5
        sched._first_ready = (
            lambda arrived: arrived[-1] if len(arrived) > 1 else None)
        reqs = [Request(paddr=i * 64, arrival=0.0, req_id=i)
                for i in range(20)]
        order = [c.request.req_id for c in sched.service(reqs)]
        assert order.index(0) == 5
