"""Packed columnar traces: encoding, reconstruction, and the
engine fast path.

The load-bearing property is the last test class: for **every**
registered polybench kernel, `run_packed` over the packed columns
produces bit-for-bit the same :class:`EngineStats` as the object-path
interpreter over the reconstructed event stream, on both baseline and
XMem machines.  Everything the figures report flows through one of
those two paths, so their equivalence is what makes the packed format
a pure optimization.
"""

import pytest

from repro.core.xmemlib import XMemLib
from repro.cpu.trace import (
    MemAccess,
    META_COUNT_SHIFT,
    META_WORK_BIT,
    META_WRITE_BIT,
    PackedTrace,
    TraceBuilder,
    Work,
    XMemOp,
    count_events,
    strip_xmem,
)
from repro.sim.config import scaled_config
from repro.sim.system import build_baseline, build_xmem
from repro.workloads.polybench import KERNELS

N = 16
TILE = 8


def mixed_events():
    """A small stream exercising every event shape and op position."""
    return [
        XMemOp("atom_map", 1, 0x1000, 64),        # leading op
        MemAccess(0x1000, False, 3),
        Work(7),
        XMemOp("atom_activate", 1),               # mid-stream op
        XMemOp("atom_deactivate", 1),             # consecutive ops
        MemAccess(0x1040, True, 0),
        Work(1),
        XMemOp("atom_unmap", 1, 0x1000, 64),      # trailing op
    ]


# ---------------------------------------------------------------------------
# Encoding / reconstruction
# ---------------------------------------------------------------------------

class TestBuilderEncoding:
    def test_flag_word_layout(self):
        b = TraceBuilder()
        b.access(0x40, is_write=True, work=5)
        b.work(9)
        b.access(0x80)
        assert list(b.vaddr) == [0x40, 0, 0x80]
        assert b.meta[0] == (5 << META_COUNT_SHIFT) | META_WRITE_BIT
        assert b.meta[1] == (9 << META_COUNT_SHIFT) | META_WORK_BIT
        assert b.meta[2] == 0

    def test_op_records_dense_position(self):
        b = TraceBuilder()
        op0 = XMemOp("atom_map", 1, 0, 64)
        b.op(op0)
        b.access(0x40)
        op1 = XMemOp("atom_activate", 1)
        b.op(op1)
        packed = b.build()
        assert packed.xmem == ((0, op0), (1, op1))
        assert len(packed) == 1
        assert packed.num_events == 3

    def test_events_roundtrip(self):
        events = mixed_events()
        packed = PackedTrace.from_events(events)
        assert list(packed.events()) == events
        # __iter__ is the same reconstruction.
        assert list(packed) == events

    def test_builder_len_and_build_reuse(self):
        b = TraceBuilder()
        b.extend(mixed_events())
        assert len(b) == len(mixed_events())
        first = b.build()
        assert first.num_events == len(mixed_events())
        # build() shares the builder's columns (zero-copy), so later
        # appends are visible through earlier builds.
        b.access(0xFF00)
        second = b.build()
        assert second.vaddr is first.vaddr
        assert len(second) == len(first) == 5

    def test_add_rejects_non_events(self):
        with pytest.raises(TypeError):
            TraceBuilder().add(object())

    def test_counts_match_object_path(self):
        events = mixed_events()
        packed = PackedTrace.from_events(events)
        assert packed.counts() == count_events(iter(events))
        assert count_events(packed) == packed.counts()


# ---------------------------------------------------------------------------
# Baseline view (side-table stripping)
# ---------------------------------------------------------------------------

class TestWithoutXmem:
    def test_shares_columns(self):
        packed = PackedTrace.from_events(mixed_events())
        bare = packed.without_xmem()
        assert bare.vaddr is packed.vaddr
        assert bare.meta is packed.meta
        assert bare.xmem == ()
        assert not any(isinstance(ev, XMemOp) for ev in bare.events())

    def test_identity_when_already_bare(self):
        packed = PackedTrace.from_events([MemAccess(0x40), Work(2)])
        assert packed.without_xmem() is packed

    def test_strip_xmem_dispatch(self):
        events = mixed_events()
        packed = PackedTrace.from_events(events)
        stripped = strip_xmem(packed)
        assert isinstance(stripped, PackedTrace)
        # Object streams still filter lazily to the same stream.
        assert (list(stripped.events())
                == list(strip_xmem(iter(events))))

    def test_equality_is_content_based(self):
        a = PackedTrace.from_events(mixed_events())
        b = PackedTrace.from_events(mixed_events())
        assert a == b
        assert a.without_xmem() != a


# ---------------------------------------------------------------------------
# Engine fast path == object path, for every kernel
# ---------------------------------------------------------------------------

def _stats_pair(kernel, system_builder, with_lib):
    """(object-path stats, packed-path stats) on fresh twin machines."""
    cfg = scaled_config(32)
    h_obj = system_builder(cfg)
    packed_a = kernel.build_packed(N, TILE, lib=h_obj.xmemlib)
    trace_a = packed_a if with_lib else packed_a.without_xmem()
    # Force the object interpreter: materialize the event stream.
    obj_stats = h_obj.engine.run(list(trace_a.events()))

    h_pk = system_builder(cfg)
    packed_b = kernel.build_packed(N, TILE, lib=h_pk.xmemlib)
    pk_stats = h_pk.run(packed_b)
    return obj_stats, pk_stats


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_packed_equals_object_baseline(name):
    obj_stats, pk_stats = _stats_pair(KERNELS[name], build_baseline,
                                      with_lib=False)
    assert obj_stats == pk_stats


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_packed_equals_object_xmem(name):
    obj_stats, pk_stats = _stats_pair(KERNELS[name], build_xmem,
                                      with_lib=True)
    assert obj_stats == pk_stats


def test_run_redirects_packed():
    """engine.run(PackedTrace) takes the fast path, same result."""
    cfg = scaled_config(32)
    kernel = KERNELS["gemm"]
    h1 = build_xmem(cfg)
    packed = kernel.build_packed(N, TILE, lib=h1.xmemlib)
    via_run = h1.engine.run(packed)
    h2 = build_xmem(cfg)
    kernel.build_packed(N, TILE, lib=h2.xmemlib)
    via_run_packed = h2.engine.run_packed(packed)
    assert via_run == via_run_packed


def test_side_table_applies_at_recorded_position():
    """An op between two accesses executes exactly between them."""
    calls = []

    class SpyLib:
        def atom_map(self, *args):
            calls.append(("atom_map", args))

    class NullMemory:
        def access(self, paddr, is_write, now):
            calls.append(("access", paddr))
            return now, False

    from repro.cpu.engine import TraceEngine
    b = TraceBuilder()
    b.access(0x40)
    b.op(XMemOp("atom_map", 7, 0x40, 64))
    b.access(0x80)
    engine = TraceEngine(NullMemory(), xmemlib=SpyLib())
    engine.run_packed(b.build())
    assert calls == [("access", 0x40), ("atom_map", (7, 0x40, 64)),
                     ("access", 0x80)]


def test_build_trace_returns_packed():
    """The historical entry point now hands back the packed form."""
    trace = KERNELS["gemm"].build_trace(N, TILE, lib=XMemLib())
    assert isinstance(trace, PackedTrace)
    assert any(isinstance(ev, XMemOp) for ev in trace)
