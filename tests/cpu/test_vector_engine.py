"""The vector batch-interpretation tier: equivalence and fallback.

The load-bearing property mirrors ``test_packed_trace.py`` one tier
up: for **every** registered polybench kernel, ``run_vector`` over the
packed columns produces bit-for-bit the same :class:`EngineStats` --
and the same full stats snapshot, every cache/DRAM/prefetch counter --
as ``run_packed``, on both baseline and XMem machines.  The vector
tier's correctness domain is guarded by :func:`eligible`; anything
outside it must fall back to the packed loop rather than answer
wrongly.
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.cpu.tiers import (
    ENGINE_TIERS,
    EXACT_TIERS,
    resolve_engine_tier,
    run_tier,
)
from repro.cpu.trace import MemAccess, PackedTrace, Work, XMemOp
from repro.cpu.vector_engine import eligible, run_vector
from repro.sim.config import scaled_config
from repro.sim.system import build_baseline, build_xmem
from repro.workloads.polybench import KERNELS

N = 16
TILE = 8


def mixed_events():
    """A small stream exercising every event shape and op position."""
    return [
        XMemOp("atom_map", 1, 0x1000, 64),
        MemAccess(0x1000, False, 3),
        Work(7),
        XMemOp("atom_activate", 1),
        XMemOp("atom_deactivate", 1),
        MemAccess(0x1040, True, 0),
        Work(1),
        XMemOp("atom_unmap", 1, 0x1000, 64),
    ]


def _pair(kernel, system_builder, with_lib):
    """(packed handle+stats, vector handle+stats) on twin machines."""
    cfg = scaled_config(32)
    h_pk = system_builder(cfg)
    packed_a = kernel.build_packed(N, TILE, lib=h_pk.xmemlib)
    trace_a = packed_a if with_lib else packed_a.without_xmem()
    pk_stats = h_pk.engine.run_packed(trace_a)

    h_vec = system_builder(cfg)
    packed_b = kernel.build_packed(N, TILE, lib=h_vec.xmemlib)
    trace_b = packed_b if with_lib else packed_b.without_xmem()
    assert eligible(h_vec.engine, trace_b)
    vec_stats = run_vector(h_vec.engine, trace_b)
    return h_pk, pk_stats, h_vec, vec_stats


# ---------------------------------------------------------------------------
# Equivalence pins: every kernel, both systems, full snapshots
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(KERNELS))
def test_vector_equals_packed_baseline(name):
    h_pk, pk_stats, h_vec, vec_stats = _pair(
        KERNELS[name], build_baseline, with_lib=False)
    assert vec_stats == pk_stats
    assert h_vec.stats_snapshot() == h_pk.stats_snapshot()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_vector_equals_packed_xmem(name):
    h_pk, pk_stats, h_vec, vec_stats = _pair(
        KERNELS[name], build_xmem, with_lib=True)
    assert vec_stats == pk_stats
    assert h_vec.stats_snapshot() == h_pk.stats_snapshot()


def test_vector_equals_packed_checked_mode(monkeypatch):
    """REPRO_CHECK=1 disables the specialized loop but not equivalence
    (and the end-of-run invariant hooks all hold)."""
    monkeypatch.setenv("REPRO_CHECK", "1")
    h_pk, pk_stats, h_vec, vec_stats = _pair(
        KERNELS["gemm"], build_xmem, with_lib=True)
    assert vec_stats == pk_stats
    assert h_vec.stats_snapshot() == h_pk.stats_snapshot()


def test_vector_mixed_events():
    bare = PackedTrace.from_events(mixed_events()).without_xmem()
    cfg = scaled_config(32)
    h_pk = build_baseline(cfg)
    pk = h_pk.engine.run_packed(bare)
    h_vec = build_baseline(cfg)
    vec = run_vector(h_vec.engine, bare)
    assert vec == pk
    assert h_vec.stats_snapshot() == h_pk.stats_snapshot()


# ---------------------------------------------------------------------------
# Eligibility gates and the fallback contract
# ---------------------------------------------------------------------------

class TestEligibility:
    def _handle(self):
        h = build_baseline(scaled_config(32))
        return h, KERNELS["gemm"].build_packed(N, TILE).without_xmem()

    def test_baseline_machine_is_eligible(self):
        h, trace = self._handle()
        assert eligible(h.engine, trace)

    def test_object_stream_is_not(self):
        h, trace = self._handle()
        assert not eligible(h.engine, list(trace.events()))

    def test_translate_falls_back(self):
        h, trace = self._handle()
        h.engine.translate = lambda v: v
        assert not eligible(h.engine, trace)

    def test_non_pow2_issue_width_falls_back(self):
        h, trace = self._handle()
        h.engine.issue_width = 3
        assert not eligible(h.engine, trace)

    def test_prefetch_log_hook_falls_back(self):
        h, trace = self._handle()
        h.memory._prefetch_log = []
        assert not eligible(h.engine, trace)

    def test_fallback_still_runs_exactly(self):
        """An ineligible shape answers through run_packed, not wrongly."""
        cfg = scaled_config(32)
        h_pk = build_baseline(cfg)
        trace = KERNELS["gemm"].build_packed(N, TILE).without_xmem()
        pk = h_pk.engine.run_packed(trace)
        h_vec = build_baseline(cfg)
        h_vec.memory._prefetch_log = []
        vec = run_vector(h_vec.engine, trace)
        assert vec == pk


# ---------------------------------------------------------------------------
# Suite-catalog shapes (Use Case 2 machines, pre-translated streams)
# ---------------------------------------------------------------------------

def _suite_twin(name, accesses=8_000):
    """Twin translation-free UC2 machines + the workload's physical
    stream (the full-size 27-workload sweep runs out of band; this
    pins the same machine shape in-tree at test-sized streams)."""
    from repro.cpu.engine import TraceEngine
    from repro.dram.system import DramSystem
    from repro.mem.hierarchy import CacheHierarchy
    from repro.mem.prefetch import MultiStridePrefetcher
    from repro.sim import usecase2 as uc2
    from repro.sim.system import MemorySystem
    from repro.sim.usecase2 import usecase2_config
    from repro.workloads.suite import BY_NAME
    from repro.xos.loader import OperatingSystem

    wl = BY_NAME[name]
    cfg = usecase2_config()
    osys = OperatingSystem(cfg.dram_geometry, mapping=uc2.XMEM_MAPPING,
                           allocator="randomized", seed=17)
    proc = osys.create_process()
    bases = wl.instantiate(proc)
    events = []
    for i, ev in enumerate(wl.trace(bases)):
        if i >= accesses:
            break
        if isinstance(ev, MemAccess):
            ev = MemAccess(proc.translate(ev.vaddr), ev.is_write, ev.work)
        events.append(ev)

    def machine():
        hierarchy = CacheHierarchy(cfg.levels, cfg.line_bytes)
        dram = DramSystem(geometry=cfg.dram_geometry,
                          timing=cfg.timing(), mapping=uc2.XMEM_MAPPING)
        stride = MultiStridePrefetcher(
            streams=cfg.prefetcher.streams, degree=cfg.prefetcher.degree,
            line_bytes=cfg.line_bytes)
        memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride)
        engine = TraceEngine(memory, xmemlib=None, translate=None,
                             issue_width=cfg.cpu.issue_width,
                             window=cfg.cpu.window)
        return memory, engine

    return machine, PackedTrace.from_events(events)


@pytest.mark.parametrize("name", ["mcf", "milc", "lbm", "kmeans", "spmv"])
def test_vector_equals_packed_suite_shapes(name):
    from repro.sim.system import SystemHandle

    machine, packed = _suite_twin(name)
    m_pk, e_pk = machine()
    pk = e_pk.run_packed(packed)
    m_vec, e_vec = machine()
    assert eligible(e_vec, packed)
    vec = run_vector(e_vec, packed)
    assert vec == pk
    h_pk = SystemHandle(name="t", config=None, engine=e_pk, memory=m_pk)
    h_vec = SystemHandle(name="t", config=None, engine=e_vec, memory=m_vec)
    assert h_vec.stats_snapshot() == h_pk.stats_snapshot()


# ---------------------------------------------------------------------------
# Tier selection / dispatch
# ---------------------------------------------------------------------------

class TestTierSelector:
    def test_default_is_packed(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_tier() == "packed"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine_tier() == "vector"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine_tier("object") == "object"

    def test_unknown_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigurationError, match="warp"):
            resolve_engine_tier()

    def test_registry_shape(self):
        assert set(EXACT_TIERS) < set(ENGINE_TIERS)
        assert "analytical" in ENGINE_TIERS
        assert "analytical" not in EXACT_TIERS

    @pytest.mark.parametrize("tier", EXACT_TIERS)
    def test_exact_tiers_agree_via_run_tier(self, tier):
        cfg = scaled_config(32)
        h_ref = build_xmem(cfg)
        trace = KERNELS["mvt"].build_packed(N, TILE, lib=h_ref.xmemlib)
        ref = h_ref.engine.run_packed(trace)
        h = build_xmem(cfg)
        trace2 = KERNELS["mvt"].build_packed(N, TILE, lib=h.xmemlib)
        assert run_tier(h.engine, trace2, tier) == ref

    def test_every_tier_accepts_object_streams(self):
        """Tier selection never changes what a caller may pass."""
        for tier in ENGINE_TIERS:
            h = build_baseline(scaled_config(32))
            stats = run_tier(h.engine, mixed_events()[1:2], tier)
            assert stats.mem_accesses == 1

    def test_system_handle_run_takes_tier(self, monkeypatch):
        cfg = scaled_config(32)
        h_ref = build_baseline(cfg)
        trace = KERNELS["gemm"].build_packed(N, TILE).without_xmem()
        ref = h_ref.run(trace)          # default: packed
        h = build_baseline(cfg)
        assert h.run(trace, engine_tier="vector") == ref

    def test_system_handle_run_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        cfg = scaled_config(32)
        h_ref = build_baseline(cfg)
        trace = KERNELS["gemm"].build_packed(N, TILE).without_xmem()
        ref = h_ref.engine.run_packed(trace)
        h = build_baseline(cfg)
        assert h.run(trace) == ref


# ---------------------------------------------------------------------------
# apply_hit_run: the batched L1 hit replay primitive
# ---------------------------------------------------------------------------

class TestApplyHitRun:
    @pytest.mark.parametrize("policy", ["lru", "drrip"])
    def test_matches_sequential_hits(self, policy):
        """One batched call == the same hits applied one at a time,
        observed through victim choice and counters afterwards."""
        from repro.mem.cache import Cache

        def build():
            c = Cache("t", 4 * 2 * 64, 2, 64, policy=policy)
            for a in (0x000, 0x100):     # fill set 0 both ways
                c.fill(a, dirty=False)
            return c

        run = [0x100, 0x000, 0x100]      # last-occurrence order: 0, 100
        seq = build()
        for a in run:
            assert seq.access(a, False).hit
        bat = build()
        replay = [(0, 0), (0, 1)]        # unique (set, tag), last occ.
        bat.apply_hit_run(len(run), replay, written=[])
        assert bat.stats.accesses == seq.stats.accesses
        assert bat.stats.hits == seq.stats.hits
        # Future behaviour is identical: both evict the same victim.
        seq.fill(0x200, dirty=False)
        bat.fill(0x200, dirty=False)
        assert seq.probe(0x000) == bat.probe(0x000)
        assert seq.probe(0x100) == bat.probe(0x100)

    def test_written_sets_dirty(self):
        from repro.mem.cache import Cache

        c = Cache("t", 4 * 2 * 64, 2, 64, policy="lru")
        c.fill(0x000, dirty=False)
        c.apply_hit_run(1, [(0, 0)], written=[(0, 0)])
        # Evicting the line must now produce a writeback.
        c.fill(0x100, dirty=False)
        assert c.fill(0x200, dirty=False) == 0x000
