"""Tests for trace events and the timing engine."""

import pytest

from repro.core.errors import ConfigurationError
from repro.cpu.engine import TraceEngine
from repro.cpu.trace import (
    MemAccess,
    Work,
    XMemOp,
    count_events,
    strip_xmem,
)


class FakeMemory:
    """Scriptable memory: per-address latency, default fast hit."""

    def __init__(self, latencies=None, default=1.0):
        self.latencies = latencies or {}
        self.default = default
        self.calls = []

    def access(self, paddr, is_write, now):
        self.calls.append((paddr, is_write, now))
        lat = self.latencies.get(paddr, self.default)
        return now + lat, lat > 30


class FakeLib:
    def __init__(self):
        self.calls = []

    def atom_map(self, *args):
        self.calls.append(("atom_map", args))

    def atom_activate(self, *args):
        self.calls.append(("atom_activate", args))


class TestTraceHelpers:
    def test_count_events(self):
        trace = [MemAccess(0, work=3), Work(5), XMemOp("atom_activate", 0),
                 MemAccess(64)]
        assert count_events(trace) == (2, 8, 1)

    def test_count_rejects_junk(self):
        with pytest.raises(TypeError):
            count_events(["nope"])

    def test_strip_xmem(self):
        trace = [MemAccess(0), XMemOp("atom_map", 0, 0, 64), Work(1)]
        stripped = list(strip_xmem(trace))
        assert stripped == [MemAccess(0), Work(1)]

    def test_event_reprs(self):
        assert "W" in repr(MemAccess(0, is_write=True))
        assert "Work(3)" == repr(Work(3))
        assert "atom_map" in repr(XMemOp("atom_map", 1))


class TestEngineTiming:
    def test_work_retires_at_issue_width(self):
        eng = TraceEngine(FakeMemory(), issue_width=4)
        stats = eng.run([Work(400)])
        assert stats.cycles == pytest.approx(100)
        assert stats.instructions == 400
        assert stats.ipc == pytest.approx(4)

    def test_bad_issue_width(self):
        with pytest.raises(ConfigurationError):
            TraceEngine(FakeMemory(), issue_width=0)

    def test_fast_hits_pipelined(self):
        eng = TraceEngine(FakeMemory(default=1.0), issue_width=1)
        stats = eng.run([MemAccess(i * 64) for i in range(100)])
        assert stats.cycles == pytest.approx(100)
        assert stats.misses_to_memory == 0

    def test_long_latency_overlaps_in_window(self):
        # 10 accesses of 100 cycles each, window 16: all overlap.
        mem = FakeMemory(default=100.0)
        eng = TraceEngine(mem, issue_width=1, window=16)
        stats = eng.run([MemAccess(i * 64) for i in range(10)])
        # Far less than serialized 1000 cycles.
        assert stats.cycles < 150
        assert stats.misses_to_memory == 10

    def test_window_full_stalls(self):
        mem = FakeMemory(default=100.0)
        eng = TraceEngine(mem, issue_width=1, window=2)
        stats = eng.run([MemAccess(i * 64) for i in range(10)])
        assert stats.stall_cycles > 0
        # Far above the fully-overlapped ~110 cycles: pair-serialized.
        assert stats.cycles >= 350

    def test_trailing_miss_counted(self):
        mem = FakeMemory(default=500.0)
        eng = TraceEngine(mem, issue_width=1, window=8)
        stats = eng.run([MemAccess(0)])
        assert stats.cycles >= 500

    def test_work_attached_to_access(self):
        eng = TraceEngine(FakeMemory(), issue_width=2)
        stats = eng.run([MemAccess(0, work=10)])
        assert stats.instructions == 11
        assert stats.cycles >= 5

    def test_translation_applied(self):
        mem = FakeMemory()
        eng = TraceEngine(mem, translate=lambda va: va + 0x1000)
        eng.run([MemAccess(0x10)])
        assert mem.calls[0][0] == 0x1010

    def test_junk_event_raises(self):
        eng = TraceEngine(FakeMemory())
        with pytest.raises(TypeError):
            eng.run([object()])


class TestEngineXMem:
    def test_xmem_ops_executed_in_order(self):
        lib = FakeLib()
        eng = TraceEngine(FakeMemory(), xmemlib=lib)
        eng.run([
            XMemOp("atom_map", 0, 0, 4096),
            MemAccess(0),
            XMemOp("atom_activate", 0),
        ])
        assert lib.calls == [("atom_map", (0, 0, 4096)),
                             ("atom_activate", (0,))]

    def test_xmem_ops_counted_as_instructions(self):
        lib = FakeLib()
        eng = TraceEngine(FakeMemory(), xmemlib=lib)
        stats = eng.run([XMemOp("atom_activate", 0), Work(999)])
        assert stats.instructions == 1000
        assert stats.xmem_instructions == 1
        assert stats.xmem_instruction_overhead == pytest.approx(0.001)

    def test_xmem_ops_skipped_without_lib(self):
        eng = TraceEngine(FakeMemory(), xmemlib=None)
        stats = eng.run([XMemOp("atom_activate", 0)])
        # Still counted (the instruction exists in the binary) but not
        # executed anywhere.
        assert stats.xmem_instructions == 1

    def test_overhead_zero_when_empty(self):
        eng = TraceEngine(FakeMemory())
        stats = eng.run([])
        assert stats.xmem_instruction_overhead == 0.0
        assert stats.ipc == 0.0
