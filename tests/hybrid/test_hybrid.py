"""Tests for the hybrid DRAM+NVM substrate and placement."""

import pytest

from repro.core.attributes import RWChar, make_attributes
from repro.core.errors import ConfigurationError
from repro.hybrid import (
    HybridCandidate,
    HybridMemorySystem,
    NvmDevice,
    NvmTiming,
    first_touch_placement,
    layout_addresses,
    pcm_like,
    plan_hybrid_placement,
)

MB = 1 << 20


def cand(atom_id, size, intensity=100, rw=RWChar.READ_WRITE,
         name="x"):
    return HybridCandidate(
        atom_id=atom_id,
        attributes=make_attributes(name, rw=rw,
                                   access_intensity=intensity),
        size_bytes=size,
    )


class TestNvmDevice:
    def test_write_slower_than_read(self):
        t = pcm_like()
        assert t.write_latency > 2 * t.read_latency

    def test_timing_validation(self):
        with pytest.raises(ConfigurationError):
            NvmTiming(read_latency=0, write_latency=1, t_burst=1)

    def test_single_access_latency(self):
        dev = NvmDevice(pcm_like())
        done = dev.access(0, now=0.0)
        t = pcm_like()
        assert done == pytest.approx(t.read_latency + t.t_burst)

    def test_units_give_parallelism(self):
        narrow = NvmDevice(pcm_like(), units=1)
        wide = NvmDevice(pcm_like(), units=4)
        n_done = max(narrow.access(i * 64, 0.0) for i in range(4))
        w_done = max(wide.access(i * 64, 0.0) for i in range(4))
        assert w_done < n_done

    def test_bad_units(self):
        with pytest.raises(ConfigurationError):
            NvmDevice(pcm_like(), units=0)

    def test_stats_split(self):
        dev = NvmDevice(pcm_like())
        dev.access(0, 0.0, is_write=False)
        dev.access(64, 0.0, is_write=True)
        assert dev.stats.reads == 1
        assert dev.stats.writes == 1
        assert dev.stats.avg_write_latency > dev.stats.avg_read_latency


class TestHybridSystem:
    def make(self):
        return HybridMemorySystem(fast_bytes=16 * MB, slow_bytes=64 * MB)

    def test_routing(self):
        h = self.make()
        assert h.is_fast(0)
        assert h.is_fast(16 * MB - 1)
        assert not h.is_fast(16 * MB)

    def test_fast_reads_faster(self):
        h = self.make()
        fast_done = h.access(0, 0.0)
        h2 = self.make()
        slow_done = h2.access(16 * MB, 0.0)
        assert fast_done < slow_done

    def test_out_of_range(self):
        h = self.make()
        with pytest.raises(ConfigurationError):
            h.access(h.total_bytes, 0.0)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            HybridMemorySystem(fast_bytes=0, slow_bytes=MB)

    def test_stats_split(self):
        h = self.make()
        h.access(0, 0.0)
        h.access(16 * MB, 0.0)
        assert h.stats.fast_accesses == 1
        assert h.stats.slow_accesses == 1
        assert h.stats.slow_share == 0.5

    def test_avg_latencies_combine_tiers(self):
        h = self.make()
        h.access(0, 0.0)
        h.access(16 * MB, 1000.0)
        assert h.avg_read_latency > 0
        h.access(64, 2000.0, is_write=True)
        assert h.avg_write_latency > 0


class TestPlacementPolicy:
    def test_hot_small_wins_fast_tier(self):
        cands = [
            cand(0, 8 * MB, intensity=20, name="cold_big"),
            cand(1, 2 * MB, intensity=200, name="hot_small"),
        ]
        p = plan_hybrid_placement(cands, fast_bytes=4 * MB)
        assert p.tier_of(1) == "fast"
        assert p.tier_of(0) == "slow"

    def test_read_only_prefers_nvm(self):
        # Same size and intensity: the read-only structure loses the
        # fast tier to the written one (asymmetric NVM writes).
        cands = [
            cand(0, 2 * MB, intensity=100, rw=RWChar.READ_ONLY,
                 name="ro"),
            cand(1, 2 * MB, intensity=100, rw=RWChar.READ_WRITE,
                 name="rw"),
        ]
        p = plan_hybrid_placement(cands, fast_bytes=2 * MB)
        assert p.tier_of(1) == "fast"
        assert p.tier_of(0) == "slow"

    def test_write_heavy_outranks_read_write(self):
        cands = [
            cand(0, 2 * MB, intensity=100, rw=RWChar.READ_WRITE),
            cand(1, 2 * MB, intensity=100, rw=RWChar.WRITE_HEAVY,
                 name="wh"),
        ]
        p = plan_hybrid_placement(cands, fast_bytes=2 * MB)
        assert p.tier_of(1) == "fast"

    def test_knapsack_fills_capacity(self):
        cands = [cand(i, 1 * MB, intensity=100 + i, name=f"s{i}")
                 for i in range(6)]
        p = plan_hybrid_placement(cands, fast_bytes=3 * MB)
        assert len(p.fast) == 3
        assert p.fast_bytes_used == 3 * MB

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            plan_hybrid_placement([], fast_bytes=0)

    def test_first_touch_ignores_semantics(self):
        cands = [
            cand(0, 2 * MB, intensity=1, name="cold_first"),
            cand(1, 2 * MB, intensity=255, name="hot_second"),
        ]
        p = first_touch_placement(cands, fast_bytes=2 * MB)
        assert p.tier_of(0) == "fast"      # allocation order wins
        assert p.tier_of(1) == "slow"

    def test_layout_addresses_respect_tiers(self):
        cands = [cand(0, 2 * MB), cand(1, 2 * MB, name="b")]
        p = plan_hybrid_placement(cands, fast_bytes=2 * MB)
        bases = layout_addresses(cands, p, fast_bytes=2 * MB)
        fast_id = p.fast[0]
        slow_id = p.slow[0]
        assert bases[fast_id] < 2 * MB
        assert bases[slow_id] >= 2 * MB


class TestEndToEndBenefit:
    def test_semantic_placement_beats_first_touch(self):
        """The Table 1 row-8 claim, measured on the hybrid system."""
        import random
        rng = random.Random(11)
        # Allocation order puts the cold read-only model first, so a
        # first-touch policy wastes the whole fast tier on it.
        cands = [
            cand(0, 2 * MB, intensity=10, rw=RWChar.READ_ONLY,
                 name="cold_model"),
            cand(1, 2 * MB, intensity=240, rw=RWChar.WRITE_HEAVY,
                 name="hot_updates"),
        ]
        accesses = []
        for _ in range(3000):
            if rng.random() < 0.9:
                atom, size, wr = 1, 2 * MB, rng.random() < 0.6
            else:
                atom, size, wr = 0, 2 * MB, False
            accesses.append((atom, rng.randrange(size // 64) * 64, wr))

        def run(placement_fn):
            system = HybridMemorySystem(fast_bytes=2 * MB,
                                        slow_bytes=16 * MB)
            placement = placement_fn(cands, 2 * MB)
            bases = layout_addresses(cands, placement, 2 * MB)
            done = 0.0
            now = 0.0
            for atom, off, wr in accesses:
                done = system.access(bases[atom] + off, now, wr)
                now += 20.0
            return system.avg_read_latency + system.avg_write_latency

        semantic = run(plan_hybrid_placement)
        first_touch = run(first_touch_placement)
        assert semantic < first_touch * 0.9
