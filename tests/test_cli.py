"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["usecase1"])
        assert args.kernel == "gemm"
        assert args.n == 96

    def test_usecase2_args(self):
        args = build_parser().parse_args(
            ["usecase2", "--workload", "mcf", "--accesses", "5000"])
        assert args.workload == "mcf"
        assert args.accesses == 5000

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kernels == "gemm"
        assert args.n == 96
        assert args.systems == "baseline,xmem"
        assert args.jobs is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "lbm" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "AAM" in out
        assert "16 MB" in out

    def test_usecase1_unknown_kernel(self, capsys):
        assert main(["usecase1", "--kernel", "nope"]) == 2

    def test_usecase2_unknown_workload(self, capsys):
        assert main(["usecase2", "--workload", "nope"]) == 2

    def test_usecase1_small_run(self, capsys):
        rc = main(["usecase1", "--kernel", "mvt", "--n", "32",
                   "--tile", "16", "--scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "XMem speedup" in out

    def test_usecase2_small_run(self, capsys):
        rc = main(["usecase2", "--workload", "sc",
                   "--accesses", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ideal" in out

    def test_sweep_unknown_kernel(self, capsys):
        assert main(["sweep", "--kernels", "nope"]) == 2

    def test_sweep_unknown_system(self, capsys):
        assert main(["sweep", "--systems", "warp"]) == 2
        assert "choices" in capsys.readouterr().err

    def test_sweep_bad_tiles(self, capsys):
        assert main(["sweep", "--tiles", "8,abc"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_small_run(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        rc = main(["sweep", "--kernels", "mvt", "--n", "32",
                   "--tiles", "8,32", "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mvt" in out
        assert "xmem speedup" in out
