"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["usecase1"])
        assert args.kernel == "gemm"
        assert args.n == 96

    def test_usecase2_args(self):
        args = build_parser().parse_args(
            ["usecase2", "--workload", "mcf", "--accesses", "5000"])
        assert args.workload == "mcf"
        assert args.accesses == 5000

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kernels == "gemm"
        assert args.n == 96
        assert args.systems == "baseline,xmem"
        assert args.jobs is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "lbm" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "AAM" in out
        assert "16 MB" in out

    def test_usecase1_unknown_kernel(self, capsys):
        assert main(["usecase1", "--kernel", "nope"]) == 2

    def test_usecase2_unknown_workload(self, capsys):
        assert main(["usecase2", "--workload", "nope"]) == 2

    def test_usecase1_small_run(self, capsys):
        rc = main(["usecase1", "--kernel", "mvt", "--n", "32",
                   "--tile", "16", "--scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "XMem speedup" in out

    def test_usecase2_small_run(self, capsys):
        rc = main(["usecase2", "--workload", "sc",
                   "--accesses", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ideal" in out

    def test_sweep_unknown_kernel(self, capsys):
        assert main(["sweep", "--kernels", "nope"]) == 2

    def test_sweep_unknown_system(self, capsys):
        assert main(["sweep", "--systems", "warp"]) == 2
        assert "choices" in capsys.readouterr().err

    def test_sweep_bad_tiles(self, capsys):
        assert main(["sweep", "--tiles", "8,abc"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_small_run(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        rc = main(["sweep", "--kernels", "mvt", "--n", "32",
                   "--tiles", "8,32", "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mvt" in out
        assert "xmem speedup" in out


class TestStatsJsonAndDiff:
    """`sweep --stats-json` document schema and `repro diff` exits."""

    @pytest.fixture
    def run_dir(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        out = tmp_path / "run_a"
        rc = main(["sweep", "--kernels", "mvt", "--n", "32",
                   "--tiles", "8", "--jobs", "1",
                   "--stats-json", str(out)])
        assert rc == 0
        capsys.readouterr()
        return out

    def test_documents_written_with_schema(self, run_dir):
        import json

        docs = sorted(run_dir.glob("*.json"))
        assert docs, "no stats documents written"
        for path in docs:
            doc = json.loads(path.read_text())
            assert sorted(doc) == ["manifest", "stats"]
            assert "baseline" in doc["stats"]
            assert "xmem" in doc["stats"]
            # Flat group paths -> {counter: value} leaves.
            for system, snap in doc["stats"].items():
                for group, counters in snap.items():
                    assert isinstance(counters, dict), (system, group)

    def test_diff_identical_run_exits_zero(self, run_dir, capsys):
        assert main(["diff", str(run_dir), str(run_dir)]) == 0
        assert "zero deltas" in capsys.readouterr().out

    def test_diff_detects_delta_exits_one(self, run_dir, tmp_path,
                                          capsys):
        import json
        import shutil

        run_b = tmp_path / "run_b"
        shutil.copytree(run_dir, run_b)
        victim = sorted(run_b.glob("*.json"))[0]
        doc = json.loads(victim.read_text())
        system = sorted(doc["stats"])[0]
        group = sorted(doc["stats"][system])[0]
        counter = sorted(doc["stats"][system][group])[0]
        doc["stats"][system][group][counter] = 10**9
        victim.write_text(json.dumps(doc))
        assert main(["diff", str(run_dir), str(run_b)]) == 1
        out = capsys.readouterr().out
        assert f"{system}.{group}" in out

    def test_diff_missing_input_exits_two(self, run_dir, tmp_path,
                                          capsys):
        assert main(["diff", str(run_dir),
                     str(tmp_path / "nonexistent")]) == 2

    def test_diff_mismatched_documents_exit_two(self, run_dir, tmp_path,
                                                capsys):
        import shutil

        run_b = tmp_path / "run_b"
        shutil.copytree(run_dir, run_b)
        extra = run_b / "zz-extra.json"
        shutil.copy(sorted(run_b.glob("*.json"))[0], extra)
        assert main(["diff", str(run_dir), str(run_b)]) == 2
        assert "only in" in capsys.readouterr().err


class TestServeCommand:
    """`repro serve`: parser wiring (the server itself is tested in
    tests/serve/)."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        # None means "resolve from REPRO_JOBS at serve time".
        assert args.workers is None
        assert args.queue_limit == 64
        assert args.cache_dir is None
        assert args.executor == "process"
        assert args.recycle_after == 32
        assert args.workspace is None
        assert args.workspace_ttl == 604800.0
        assert args.workspace_limit_mb == 512
        assert args.verbose is False

    def test_parser_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4",
             "--queue-limit", "8", "--cache-dir", "off",
             "--executor", "thread", "--recycle-after", "5",
             "--workspace", "/tmp/ws", "--workspace-ttl", "60",
             "--workspace-limit-mb", "1", "--verbose"])
        assert args.port == 0
        assert args.workers == 4
        assert args.queue_limit == 8
        assert args.cache_dir == "off"
        assert args.executor == "thread"
        assert args.recycle_after == 5
        assert args.workspace == "/tmp/ws"
        assert args.workspace_ttl == 60.0
        assert args.workspace_limit_mb == 1
        assert args.verbose is True

    def test_bind_failure_exits_two(self, capsys):
        import socket

        # Hold a port so the server cannot bind it.
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        port = holder.getsockname()[1]
        try:
            rc = main(["serve", "--port", str(port)])
        finally:
            holder.close()
        assert rc == 2
        assert "cannot bind" in capsys.readouterr().err


class TestFuzzCommand:
    """`repro fuzz`: exit codes, corpus, replay."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.cases == 200
        assert args.seed == 0
        assert args.length == 400
        assert args.lanes is None
        assert args.replay is None

    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "10", "--length", "60"]) == 0
        out = capsys.readouterr().out
        assert "all lanes agree" in out

    def test_unknown_lane_exits_two(self, capsys):
        assert main(["fuzz", "--lanes", "bogus"]) == 2
        assert "choices" in capsys.readouterr().err

    def test_nonpositive_cases_exits_two(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2

    def test_divergence_exits_one_and_writes_corpus(self, capsys,
                                                    tmp_path):
        from repro.mem.replacement import LRUPolicy

        def broken_victim(self, set_idx, candidates):
            return max(candidates,
                       key=self._stamp[set_idx].__getitem__)

        corpus = tmp_path / "corpus"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(LRUPolicy, "victim", broken_victim)
            rc = main(["fuzz", "--cases", "20", "--lanes", "cache",
                       "--length", "200", "--corpus", str(corpus)])
        assert rc == 1
        assert "diverging case" in capsys.readouterr().out
        assert sorted(corpus.glob("*.json"))

    def test_replay_fixed_corpus_exits_zero(self, capsys, tmp_path):
        from repro.mem.replacement import LRUPolicy

        def broken_victim(self, set_idx, candidates):
            return max(candidates,
                       key=self._stamp[set_idx].__getitem__)

        corpus = tmp_path / "corpus"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(LRUPolicy, "victim", broken_victim)
            main(["fuzz", "--cases", "20", "--lanes", "cache",
                  "--length", "200", "--corpus", str(corpus)])
            capsys.readouterr()
            # Mutant still live: the reproducers must fail replay.
            assert main(["fuzz", "--replay", str(corpus)]) == 1
            capsys.readouterr()
        # Mutant reverted: the same corpus passes (regression mode).
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["fuzz", "--replay",
                     str(tmp_path / "empty-dir")]) == 2


class TestCorunCliAudit:
    """`repro corun` error paths around --stats-json (ISSUE 9's CLI
    audit): every bad input is a clean exit-2 with a message, and a
    good run self-diffs to zero deltas."""

    def test_unknown_tenant_exits_two(self, capsys):
        assert main(["corun", "--tenants", "mcf,warpfield"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_malformed_xmem_tenants_exits_two(self, capsys):
        assert main(["corun", "--tenants", "mcf,lbm",
                     "--xmem-tenants", "a,b"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_out_of_range_xmem_tenants_exits_two(self, capsys):
        assert main(["corun", "--tenants", "mcf,lbm",
                     "--xmem-tenants", "5"]) == 2
        assert "outside" in capsys.readouterr().err

    def test_unknown_engine_exits_two(self, capsys):
        assert main(["corun", "--tenants", "mcf,lbm",
                     "--engine", "warp"]) == 2
        assert "choices" in capsys.readouterr().err

    def test_bad_scenario_tenant_exits_two(self, capsys):
        assert main(["corun", "--tenants", "scenario:nope"]) == 2
        assert "bad scenario tenant" in capsys.readouterr().err

    def test_scenario_tenant_rejects_footprint_div(self, capsys):
        assert main(["corun", "--tenants", "scenario:hotcold",
                     "--footprint-div", "4"]) == 2
        assert "fixed declared footprints" in capsys.readouterr().err

    def test_stats_json_self_diffs_clean(self, capsys, monkeypatch,
                                         tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE",
                           str(tmp_path / "cache"))
        out = tmp_path / "corun_run"
        rc = main(["corun", "--tenants", "scenario:hotcold",
                   "--accesses", "600", "--scale", "16",
                   "--stats-json", str(out)])
        assert rc == 0
        capsys.readouterr()
        docs = sorted(out.glob("*.json"))
        assert len(docs) == 1
        assert "scenario-hotcold" in docs[0].name
        import json
        manifest = json.loads(docs[0].read_text())["manifest"]
        assert manifest["kind"] == "corunpoint"
        tenant = manifest["trace"]["tenants"][0]
        assert tenant["workload"] == "scenario:hotcold"
        assert main(["diff", str(out), str(out)]) == 0


class TestDiffCrossTier:
    """`repro diff` across manifests recorded on different engine
    tiers."""

    @pytest.fixture
    def run_dir(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        out = tmp_path / "run_a"
        rc = main(["sweep", "--kernels", "mvt", "--n", "32",
                   "--tiles", "8", "--jobs", "1",
                   "--stats-json", str(out)])
        assert rc == 0
        capsys.readouterr()
        return out

    def _retier(self, run_dir, tmp_path, tier):
        import json
        import shutil

        run_b = tmp_path / f"run_{tier}"
        shutil.copytree(run_dir, run_b)
        for path in run_b.glob("*.json"):
            doc = json.loads(path.read_text())
            doc["manifest"]["trace"]["tier"] = tier
            path.write_text(json.dumps(doc))
        return run_b

    def test_estimating_tier_suppresses_deltas(self, run_dir, tmp_path,
                                               capsys):
        run_b = self._retier(run_dir, tmp_path, "analytical")
        assert main(["diff", str(run_dir), str(run_b)]) == 1
        out = capsys.readouterr().out
        assert "suppressed" in out
        assert "cross-tier document pair(s) flagged" in out

    def test_exact_tiers_still_gate_to_zero(self, run_dir, tmp_path,
                                            capsys):
        from repro.cpu.tiers import EXACT_TIERS

        import json
        current = json.loads(sorted(run_dir.glob("*.json"))[0]
                             .read_text())["manifest"]["trace"]["tier"]
        other = sorted(set(EXACT_TIERS) - {current})[0]
        run_b = self._retier(run_dir, tmp_path, other)
        assert main(["diff", str(run_dir), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "cross-tier comparison of exact tiers" in out
        assert "zero deltas" in out


class TestScenarioCli:
    """The scenario factory's CLI surface: list, sweep --scenarios."""

    def test_list_shows_scenario_specs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Scenario specs" in out
        assert "streamgrid" in out
        assert "lackey-sample" in out

    def test_sweep_bad_scenario_exits_two(self, capsys):
        assert main(["sweep", "--kernels", "",
                     "--scenarios", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_sweep_nothing_exits_two(self, capsys):
        assert main(["sweep", "--kernels", ""]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_scenario_only_sweep(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        out = tmp_path / "scn"
        rc = main(["sweep", "--kernels", "", "--scenarios", "hotcold",
                   "--scale", "16", "--jobs", "1",
                   "--stats-json", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "scn:hotcold" in stdout
        docs = sorted(out.glob("*.json"))
        assert len(docs) == 1
        assert docs[0].name.startswith("000_scn_hotcold_")
        assert main(["diff", str(out), str(out)]) == 0
