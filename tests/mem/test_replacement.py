"""Tests for replacement policies (repro.mem.replacement)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mem.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    RRPV_LONG,
    RRPV_MAX,
    RandomPolicy,
    SRRIPPolicy,
    make_policy,
)


class TestFactory:
    def test_known_policies(self):
        for name in ("lru", "random", "srrip", "brrip", "drrip"):
            assert make_policy(name, 4, 4).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("clairvoyant", 4, 4)

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy(0, 4)


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)  # way 0 is now most recent; way 1 is LRU
        assert p.victim(0, [0, 1, 2, 3]) == 1

    def test_respects_candidates(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        # Way 0 is LRU overall but excluded (e.g., pinned).
        assert p.victim(0, [2, 3]) == 2

    def test_per_set_independence(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(1, 1)
        p.on_fill(0, 1)
        assert p.victim(0, [0, 1]) == 0
        assert p.victim(1, [0, 1]) == 0  # untouched way in set 1


class TestRandom:
    def test_victim_in_candidates(self):
        p = RandomPolicy(1, 8, seed=42)
        for _ in range(50):
            assert p.victim(0, [2, 5, 7]) in (2, 5, 7)

    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=1)
        b = RandomPolicy(1, 8, seed=1)
        seq_a = [a.victim(0, list(range(8))) for _ in range(20)]
        seq_b = [b.victim(0, list(range(8))) for _ in range(20)]
        assert seq_a == seq_b


class TestSRRIP:
    def test_insert_long_interval(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        assert p._rrpv[0][0] == RRPV_LONG

    def test_high_priority_insert_at_zero(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0, high_priority=True)
        assert p._rrpv[0][0] == 0

    def test_hit_promotes(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p._rrpv[0][0] == 0

    def test_victim_prefers_rrpv_max(self):
        p = SRRIPPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p._rrpv[0][2] = RRPV_MAX
        assert p.victim(0, [0, 1, 2, 3]) == 2

    def test_aging_when_no_max(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0, high_priority=True)   # rrpv 0
        p.on_fill(0, 1)                       # rrpv 2
        # No way at 3: aging happens; way 1 reaches 3 first.
        assert p.victim(0, [0, 1]) == 1

    def test_recent_high_priority_survives(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0, high_priority=True)
        for way in (1, 2, 3):
            p.on_fill(0, way)
        assert p.victim(0, [0, 1, 2, 3]) != 0


class TestBRRIP:
    def test_mostly_distant_inserts(self):
        p = BRRIPPolicy(1, 4)
        distant = 0
        for i in range(64):
            p.on_fill(0, i % 4)
            if p._rrpv[0][i % 4] == RRPV_MAX:
                distant += 1
        # 1-in-32 fills at long interval -> ~62 of 64 distant.
        assert distant >= 56


class TestDRRIP:
    def test_leader_sets_fixed(self):
        p = DRRIPPolicy(64, 4)
        assert p._leader(0) == "srrip"
        assert p._leader(1) == "brrip"
        assert p._leader(2) is None
        assert p._leader(32) == "srrip"

    def test_psel_moves_on_leader_misses(self):
        p = DRRIPPolicy(64, 4)
        start = p._psel
        p.record_miss(0)     # SRRIP leader miss -> toward BRRIP
        assert p._psel == start + 1
        p.record_miss(1)     # BRRIP leader miss -> back
        p.record_miss(1)
        assert p._psel == start - 1

    def test_followers_adopt_winner(self):
        p = DRRIPPolicy(64, 4)
        # Hammer the SRRIP leaders with misses: BRRIP should win.
        for _ in range(600):
            p.record_miss(0)
        assert p._use_brrip(2)
        # Now hammer BRRIP leaders: SRRIP wins again.
        for _ in range(1200):
            p.record_miss(1)
        assert not p._use_brrip(2)

    def test_psel_saturates(self):
        p = DRRIPPolicy(64, 4)
        for _ in range(5000):
            p.record_miss(0)
        assert p._psel == p._psel_max
        for _ in range(10000):
            p.record_miss(1)
        assert p._psel == 0
