"""Tests for the cache hierarchy (repro.mem.hierarchy)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mem.hierarchy import CacheHierarchy, LevelConfig


def three_level(l1=1024, l2=2048, l3=4096, policy="lru"):
    return CacheHierarchy([
        LevelConfig("L1", l1, 2, latency=4, policy="lru"),
        LevelConfig("L2", l2, 4, latency=8, policy=policy),
        LevelConfig("L3", l3, 4, latency=27, policy=policy),
    ])


class TestBasics:
    def test_needs_levels(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([])

    def test_cold_miss_reaches_memory(self):
        h = three_level()
        out = h.access(0, False)
        assert out.memory_read
        assert out.hit_level is None
        assert out.lookup_latency == 4 + 8 + 27

    def test_fill_after_miss_hits_l1(self):
        h = three_level()
        h.access(0, False)
        out = h.access(0, False)
        assert out.hit_level == 0
        assert out.lookup_latency == 4

    def test_l1_eviction_falls_to_l2(self):
        h = three_level()
        # L1: 1KB/2way/64B = 8 sets. Fill 3 lines in one L1 set.
        stride = 8 * 64
        for i in range(3):
            h.access(i * stride, False)
        # Line 0 was evicted from L1 but still in L2.
        out = h.access(0, False)
        assert out.hit_level == 1

    def test_dirty_l1_victim_propagates(self):
        h = three_level()
        stride = 8 * 64
        h.access(0, True)           # dirty in L1
        h.access(stride, False)
        h.access(2 * stride, False)  # evicts line 0 dirty into L2
        # No memory writeback yet: absorbed by L2.
        out = h.access(3 * stride, False)
        assert out.memory_writebacks == []

    def test_llc_dirty_eviction_writes_memory(self):
        h = CacheHierarchy([LevelConfig("LLC", 1024, 1, latency=1)])
        h.access(0, True)
        # Direct-mapped 16 sets: conflict at the same set.
        out = h.access(16 * 64, False)
        assert 0 in out.memory_writebacks

    def test_write_allocates(self):
        h = three_level()
        out = h.access(0, True)
        assert out.memory_read
        assert h.access(0, False).hit_level == 0


class TestPinning:
    def test_pin_predicate_applies_at_llc_only(self):
        h = three_level()
        h.pin_predicate = lambda line: True
        h.access(0, False)
        assert h.llc.pinned_lines == 1
        assert h.levels[0].pinned_lines == 0
        assert h.levels[1].pinned_lines == 0

    def test_pinned_survive_llc_thrash(self):
        h = CacheHierarchy([LevelConfig("LLC", 4096, 4, latency=1,
                                        policy="lru")])
        h.pin_predicate = lambda line: line == 0
        h.access(0, False)
        stride = h.llc.num_sets * 64
        for i in range(1, 32):
            h.access(i * stride, False)
        assert h.access(0, False).hit_level == 0


class TestPrefetchPath:
    def test_prefetch_fills_llc_only(self):
        h = three_level()
        out = h.fill_prefetch(0)
        assert out.memory_read            # had to fetch
        assert h.llc.probe(0)
        assert not h.levels[0].probe(0)
        assert not h.levels[1].probe(0)

    def test_prefetch_to_resident_line_free(self):
        h = three_level()
        h.access(0, False)
        out = h.fill_prefetch(0)
        assert not out.memory_read

    def test_prefetched_line_demand_hits_at_llc(self):
        h = three_level()
        h.fill_prefetch(0)
        out = h.access(0, False)
        assert out.hit_level == 2
        assert out.llc_prefetch_hit

    def test_prefetch_respects_pin_predicate(self):
        h = three_level()
        h.pin_predicate = lambda line: True
        h.fill_prefetch(0)
        assert h.llc.pinned_lines == 1


class TestWorkingSets:
    def test_fitting_working_set_hits(self):
        h = three_level()
        lines = [i * 64 for i in range(8)]  # 512B fits everywhere
        for a in lines:
            h.access(a, False)
        hits = sum(h.access(a, False).hit_level == 0 for a in lines)
        assert hits == len(lines)

    def test_thrashing_working_set_misses_lru(self):
        # Working set 2x the LLC with LRU: second pass all misses.
        h = CacheHierarchy([LevelConfig("LLC", 1024, 2, latency=1,
                                        policy="lru")])
        lines = [i * 64 for i in range(2 * 1024 // 64)]
        for a in lines:
            h.access(a, False)
        misses = sum(h.access(a, False).memory_read for a in lines)
        assert misses == len(lines)

    def test_brrip_resists_thrash(self):
        # Same oversize working set with BRRIP keeps part resident.
        h = CacheHierarchy([LevelConfig("LLC", 1024, 2, latency=1,
                                        policy="brrip")])
        lines = [i * 64 for i in range(2 * 1024 // 64)]
        for _ in range(4):
            for a in lines:
                h.access(a, False)
        hit_rate = h.llc.stats.hit_rate
        assert hit_rate > 0.05

    def test_invalidate_all(self):
        h = three_level()
        h.access(0, False)
        h.invalidate_all()
        assert h.access(0, False).memory_read
