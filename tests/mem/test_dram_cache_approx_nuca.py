"""Tests for the DRAM cache, approximate memory, and NUCA modules."""

import pytest

from repro.core.attributes import DataProperty, PatternType, RWChar, \
    make_attributes
from repro.core.errors import ConfigurationError
from repro.core.xmemlib import XMemLib
from repro.mem.approx import ApproxConfig, ApproximateMemory
from repro.mem.dram_cache import DramCache, SemanticDramCachePolicy
from repro.mem.nuca import (
    NucaCandidate,
    NucaMachine,
    hashed_placement,
    mean_latency,
    plan_nuca_placement,
)


class TestDramCache:
    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            DramCache(1 << 20, hit_latency=200, miss_latency=100)

    def test_hit_after_fill(self):
        dc = DramCache(64 * 1024)
        assert dc.access(0) == dc.miss_latency
        assert dc.access(0) == dc.hit_latency
        assert dc.stats.hit_rate == 0.5

    def test_bypass_predicate(self):
        dc = DramCache(64 * 1024)
        dc.insert_predicate = lambda addr: False
        dc.access(0)
        assert dc.access(0) == dc.miss_latency   # never inserted
        assert dc.stats.bypassed_fills == 2
        assert dc.resident_lines == 0


class TestSemanticDramCachePolicy:
    def make(self, cache_bytes=64 * 1024):
        lib = XMemLib()
        dc = DramCache(cache_bytes)
        policy = SemanticDramCachePolicy(dc, lib.process.atom_for_paddr)
        return lib, dc, policy

    def add_atom(self, lib, name, size, reuse, base=0):
        atom = lib.create_atom(name, pattern=PatternType.REGULAR,
                               stride_bytes=64, reuse=reuse)
        lib.atom_map(atom, base, size)
        lib.atom_activate(atom)
        return atom

    def test_zero_reuse_bypasses(self):
        lib, dc, policy = self.make()
        self.add_atom(lib, "stream", 1 << 20, reuse=0)
        assert not policy.should_insert(0)

    def test_oversized_working_set_bypasses(self):
        lib, dc, policy = self.make(cache_bytes=64 * 1024)
        self.add_atom(lib, "huge", 1 << 20, reuse=200)
        assert not policy.should_insert(0)

    def test_fitting_reused_data_inserts(self):
        lib, dc, policy = self.make()
        self.add_atom(lib, "hot", 16 * 1024, reuse=200)
        assert policy.should_insert(0)

    def test_unannotated_data_inserts(self):
        lib, dc, policy = self.make()
        assert policy.should_insert(1 << 30)

    def test_semantics_avoid_thrash_end_to_end(self):
        """With a huge zero-payback stream plus a hot set, the semantic
        policy keeps the hot set resident; blind insertion thrashes."""
        def run(semantic):
            lib = XMemLib()
            dc = DramCache(64 * 1024)
            if semantic:
                SemanticDramCachePolicy(dc, lib.process.atom_for_paddr)
            hot = lib.create_atom("hot", pattern=PatternType.REGULAR,
                                  stride_bytes=64, reuse=255)
            lib.atom_map(hot, 0, 32 * 1024)
            lib.atom_activate(hot)
            stream = lib.create_atom("st", pattern=PatternType.REGULAR,
                                     stride_bytes=64, reuse=0)
            lib.atom_map(stream, 1 << 20, 1 << 21)
            lib.atom_activate(stream)
            total = 0.0
            for rep in range(4):
                for i in range(0, 32 * 1024, 64):      # hot set
                    total += dc.access(i)
                for i in range(0, 1 << 21, 64):        # stream sweep
                    total += dc.access((1 << 20) + i)
            return total

        assert run(semantic=True) < run(semantic=False)


class TestApproximateMemory:
    @staticmethod
    def lib_with(properties, size=4096):
        lib = XMemLib()
        atom = lib.create_atom("a", properties=properties)
        lib.atom_map(atom, 0, size)
        lib.atom_activate(atom)
        return lib

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ApproxConfig(reliable_latency=50, approx_latency=90)
        with pytest.raises(ConfigurationError):
            ApproxConfig(error_rate=1.5)

    def test_approximable_data_takes_fast_path(self):
        lib = self.lib_with((DataProperty.APPROXIMABLE,))
        mem = ApproximateMemory(lib.process.atom_for_paddr)
        assert mem.access(0) == mem.config.approx_latency
        assert mem.stats.approx_accesses == 1

    def test_unannotated_data_never_approximated(self):
        lib = XMemLib()
        mem = ApproximateMemory(lib.process.atom_for_paddr)
        for addr in (0, 4096, 1 << 20):
            assert mem.access(addr) == mem.config.reliable_latency
        assert mem.stats.approx_accesses == 0

    def test_non_approximable_atom_reliable(self):
        lib = self.lib_with((DataProperty.SPARSE,))
        mem = ApproximateMemory(lib.process.atom_for_paddr)
        assert mem.access(0) == mem.config.reliable_latency

    def test_deactivation_disables_approximation(self):
        lib = self.lib_with((DataProperty.APPROXIMABLE,))
        mem = ApproximateMemory(lib.process.atom_for_paddr)
        lib.atom_deactivate(0)
        assert mem.access(0) == mem.config.reliable_latency

    def test_errors_bounded_by_rate(self):
        lib = self.lib_with((DataProperty.APPROXIMABLE,), size=1 << 20)
        mem = ApproximateMemory(
            lib.process.atom_for_paddr,
            ApproxConfig(error_rate=0.1), seed=3,
        )
        for i in range(5000):
            mem.access((i * 64) % (1 << 20))
        rate = mem.stats.injected_errors / mem.stats.approx_accesses
        assert 0.05 < rate < 0.15

    def test_latency_saved(self):
        lib = self.lib_with((DataProperty.APPROXIMABLE,))
        mem = ApproximateMemory(lib.process.atom_for_paddr)
        mem.access(0)
        assert mem.mean_latency_saved == pytest.approx(
            mem.config.reliable_latency - mem.config.approx_latency
        )


class TestNuca:
    def attrs(self, name="x"):
        return make_attributes(name)

    def test_machine_latency_ring(self):
        m = NucaMachine(slices=8, base_latency=10, hop_latency=2)
        assert m.latency(0, 0) == 10
        assert m.latency(0, 1) == 12
        assert m.latency(0, 7) == 12   # ring wraps
        assert m.latency(0, 4) == 18
        with pytest.raises(ConfigurationError):
            m.latency(0, 8)

    def test_private_data_placed_at_owner(self):
        m = NucaMachine(slices=4)
        shares = (0.0, 0.0, 1.0, 0.0)
        cand = NucaCandidate(0, self.attrs(), 1024, shares)
        placement = plan_nuca_placement([cand], m)
        assert placement[0] == 2

    def test_shared_data_minimizes_distance(self):
        m = NucaMachine(slices=4)
        cand = NucaCandidate(0, self.attrs(), 1024,
                             (0.5, 0.0, 0.5, 0.0))
        placement = plan_nuca_placement([cand], m)
        # Either neighbour between cores 0 and 2 is optimal on a ring.
        assert placement[0] in (0, 1, 2, 3)
        got = mean_latency([cand], placement, m)
        best = min(mean_latency([cand], {0: s}, m) for s in range(4))
        assert got == pytest.approx(best)

    def test_capacity_pushes_overflow_elsewhere(self):
        m = NucaMachine(slices=2, slice_bytes=1024)
        a = NucaCandidate(0, self.attrs("a"), 1024, (1.0, 0.0))
        b = NucaCandidate(1, self.attrs("b"), 1024, (1.0, 0.0))
        placement = plan_nuca_placement([a, b], m)
        assert sorted(placement.values()) == [0, 1]

    def test_vector_length_validated(self):
        m = NucaMachine(slices=4)
        cand = NucaCandidate(0, self.attrs(), 1024, (1.0,))
        with pytest.raises(ConfigurationError):
            plan_nuca_placement([cand], m)

    def test_semantic_beats_hashed(self):
        """Row 9's claim: intensity-aware home slices beat striping."""
        m = NucaMachine(slices=8)
        # Owner cores deliberately misaligned with allocation order so
        # round-robin striping lands most pools far from their owner.
        cands = [
            NucaCandidate(i, self.attrs(f"p{i}"), 1024,
                          tuple(1000.0 if c == (i * 3) % 8 else 0.0
                                for c in range(8)))
            for i in range(8)
        ]
        semantic = plan_nuca_placement(cands, m)
        hashed = hashed_placement(cands, m)
        assert mean_latency(cands, semantic, m) < \
            mean_latency(cands, hashed, m)
