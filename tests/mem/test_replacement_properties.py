"""Property tests for the replacement policies over random strings.

Satellite of the differential-testing subsystem: the policies are
driven directly (no cache around them) with seeded random access
strings -- 1000 seeds each -- against executable oracles:

* LRU against Python dict ordering (``dict`` preserves insertion
  order; re-inserting moves a key to the back, exactly LRU's MRU
  promotion), and
* the RRIP family against its structural invariants: RRPVs stay in
  [0, RRPV_MAX], a victim always has RRPV_MAX at selection time, hits
  promote to 0, and DRRIP's PSEL stays within its saturating bounds.
"""

import random

import pytest

from repro.mem.replacement import (
    RRPV_MAX,
    DRRIPPolicy,
    LRUPolicy,
    SRRIPPolicy,
    make_policy,
)

WAYS = 4
SEEDS = range(1000)


class DictLRUOracle:
    """LRU via dict ordering: first key = least recently used."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self._d = {}

    def touch(self, way: int) -> None:
        self._d.pop(way, None)
        self._d[way] = True

    def evict(self, candidates) -> int:
        allowed = set(candidates)
        for way in self._d:
            if way in allowed:
                del self._d[way]
                return way
        raise AssertionError("no candidate resident in the oracle")


def drive_lru(seed: int, ways: int = WAYS, steps: int = 40):
    """One random access string through LRUPolicy and the dict oracle."""
    rng = random.Random(seed)
    policy = LRUPolicy(1, ways)
    oracle = DictLRUOracle(ways)
    filled = set()
    for step in range(steps):
        if len(filled) < ways:
            way = rng.choice([w for w in range(ways) if w not in filled])
            policy.on_fill(0, way)
            oracle.touch(way)
            filled.add(way)
        elif rng.random() < 0.7:
            way = rng.choice(sorted(filled))
            policy.on_hit(0, way)
            oracle.touch(way)
        else:
            candidates = sorted(
                rng.sample(sorted(filled), rng.randint(1, len(filled))))
            got = policy.victim(0, candidates)
            want = oracle.evict(candidates)
            assert got == want, (
                f"seed {seed} step {step}: LRU victim {got}, "
                f"dict-order oracle says {want} (candidates {candidates})"
            )
            policy.on_invalidate(0, got)
            filled.discard(got)


def test_lru_matches_dict_ordering_oracle():
    for seed in SEEDS:
        drive_lru(seed)


@pytest.mark.parametrize("ways", [1, 2, 8])
def test_lru_other_geometries(ways):
    for seed in range(100):
        drive_lru(seed, ways=ways)


def drive_rrip(policy, seed: int, num_sets: int, ways: int,
               steps: int = 60) -> None:
    """Random fills/hits/evictions; structural invariants at each step."""
    rng = random.Random(seed)
    is_drrip = isinstance(policy, DRRIPPolicy)
    for step in range(steps):
        set_idx = rng.randrange(num_sets)
        roll = rng.random()
        if roll < 0.4:
            policy.on_fill(set_idx, rng.randrange(ways),
                           high_priority=rng.random() < 0.2)
        elif roll < 0.7:
            policy.on_hit(set_idx, rng.randrange(ways))
        elif roll < 0.85:
            candidates = sorted(
                rng.sample(range(ways), rng.randint(1, ways)))
            victim = policy.victim(set_idx, candidates)
            assert victim in candidates
            assert policy._rrpv[set_idx][victim] == RRPV_MAX, (
                f"seed {seed} step {step}: victim way {victim} has "
                f"RRPV {policy._rrpv[set_idx][victim]}, not {RRPV_MAX}"
            )
            policy.on_invalidate(set_idx, victim)
        elif is_drrip:
            policy.record_miss(set_idx)
        for row in policy._rrpv:
            assert all(0 <= v <= RRPV_MAX for v in row), (
                f"seed {seed} step {step}: RRPV out of bounds in {row}"
            )
        if is_drrip:
            assert 0 <= policy._psel <= policy._psel_max, (
                f"seed {seed} step {step}: PSEL {policy._psel} outside "
                f"[0, {policy._psel_max}]"
            )


def test_drrip_rrpv_and_psel_bounds():
    # 64 sets spans both leader flavours (DUEL_PERIOD=32) plus
    # followers, so the duel machinery is exercised, not just SRRIP.
    for seed in SEEDS:
        drive_rrip(DRRIPPolicy(64, WAYS), seed, 64, WAYS, steps=30)


def test_srrip_rrpv_bounds():
    for seed in range(200):
        drive_rrip(SRRIPPolicy(4, WAYS), seed, 4, WAYS)


def test_hit_promotes_to_zero():
    policy = SRRIPPolicy(1, WAYS)
    policy.on_fill(0, 2)
    policy.on_hit(0, 2)
    assert policy._rrpv[0][2] == 0


def test_high_priority_fill_inserts_at_zero():
    for name in ("srrip", "brrip", "drrip"):
        policy = make_policy(name, 4, WAYS)
        policy.on_fill(1, 3, high_priority=True)
        assert policy._rrpv[1][3] == 0, name
