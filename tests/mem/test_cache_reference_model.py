"""Behavioural equivalence of the LRU cache against a naive reference.

A textbook reference model (per-set ordered lists) is compared against
:class:`repro.mem.cache.Cache` under arbitrary demand streams: every
access must agree on hit/miss, and every eviction on the victim.  This
pins the whole lookup/fill/evict path, not just aggregate stats.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache

LINE = 64
SETS = 4
WAYS = 2
SIZE = SETS * WAYS * LINE


class ReferenceLRU:
    """Dict-of-lists LRU cache, deliberately naive."""

    def __init__(self):
        self.sets = {s: [] for s in range(SETS)}  # MRU at end

    @staticmethod
    def place(line):
        index = (line // LINE) % SETS
        tag = line // (LINE * SETS)
        return index, tag

    def access(self, line):
        index, tag = self.place(line)
        ways = self.sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        return False

    def fill(self, line):
        index, tag = self.place(line)
        ways = self.sets[index]
        victim = None
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= WAYS:
            vtag = ways.pop(0)
            victim = (vtag * SETS + index) * LINE
        ways.append(tag)
        return victim


lines = st.integers(0, 63).map(lambda i: i * LINE)


@settings(max_examples=60)
@given(st.lists(lines, min_size=1, max_size=300))
def test_lru_cache_matches_reference(stream):
    cache = Cache("t", SIZE, WAYS, LINE, policy="lru")
    ref = ReferenceLRU()
    for line in stream:
        got = cache.access(line, is_write=False).hit
        want = ref.access(line)
        assert got == want, f"hit/miss diverged at {line:#x}"
        if not got:
            cache.fill(line, dirty=True)
            ref.fill(line)


@settings(max_examples=60)
@given(st.lists(lines, min_size=1, max_size=300))
def test_lru_eviction_victims_match_reference(stream):
    cache = Cache("t", SIZE, WAYS, LINE, policy="lru")
    ref = ReferenceLRU()
    for line in stream:
        if not cache.access(line, False).hit:
            got_victim = cache.fill(line, dirty=True)
            want_victim = ref.fill(line)
            assert got_victim == want_victim, (
                f"victim diverged at {line:#x}"
            )
        else:
            ref.access(line)


@settings(max_examples=40)
@given(st.lists(st.tuples(lines, st.booleans()), min_size=1,
                max_size=200))
def test_resident_set_matches_reference(stream):
    cache = Cache("t", SIZE, WAYS, LINE, policy="lru")
    ref = ReferenceLRU()
    for line, _ in stream:
        if not cache.access(line, False).hit:
            cache.fill(line)
            ref.fill(line)
        else:
            ref.access(line)
    # The full resident sets must agree at the end.
    want = {(t * SETS + s) * LINE
            for s, ways in ref.sets.items() for t in ways}
    got = {line for line in (i * LINE for i in range(64))
           if cache.probe(line)}
    assert got == want
