"""Tests for the set-associative cache model (repro.mem.cache)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.mem.cache import Cache


def small_cache(**kw):
    defaults = dict(name="L", size_bytes=4096, ways=4, line_bytes=64,
                    policy="lru")
    defaults.update(kw)
    return Cache(**defaults)


class TestGeometry:
    def test_sets_computed(self):
        c = small_cache()
        assert c.num_sets == 4096 // (4 * 64)

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("x", 1000, 4, 64)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("x", 4096 * 3, 4, 64)

    def test_line_addr(self):
        c = small_cache()
        assert c.line_addr(130) == 128
        assert c.line_addr(128) == 128


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        r = c.access(0, is_write=False)
        assert not r.hit
        c.fill(0)
        assert c.access(0, is_write=False).hit
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_same_line_different_offsets(self):
        c = small_cache()
        c.fill(c.line_addr(70))
        assert c.access(c.line_addr(64), False).hit

    def test_conflict_eviction(self):
        c = small_cache()  # 16 sets, 4 ways
        set_stride = 16 * 64
        # Five lines mapping to set 0 overflow its 4 ways.
        for i in range(5):
            c.fill(i * set_stride)
        assert c.stats.evictions == 1
        assert not c.access(0, False).hit          # LRU victim was line 0
        assert c.access(4 * set_stride, False).hit

    def test_capacity(self):
        c = small_cache()
        lines = 4096 // 64
        for i in range(lines):
            c.fill(i * 64)
        assert c.resident_lines == lines
        assert c.stats.evictions == 0


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self):
        c = small_cache(ways=1, size_bytes=1024)  # direct-mapped, 16 sets
        c.fill(0, dirty=True)
        wb = c.fill(1024)  # same set, evicts line 0
        assert wb == 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(ways=1, size_bytes=1024)
        c.fill(0, dirty=False)
        assert c.fill(1024) is None

    def test_write_hit_sets_dirty(self):
        c = small_cache(ways=1, size_bytes=1024)
        c.fill(0)
        c.access(0, is_write=True)
        wb = c.fill(1024)
        assert wb == 0

    def test_refill_merges_dirty(self):
        c = small_cache()
        c.fill(0, dirty=False)
        c.fill(0, dirty=True)
        assert c.resident_lines == 1


class TestPinning:
    def test_pinned_line_survives_pressure(self):
        c = small_cache()  # 4 ways
        set_stride = c.num_sets * 64
        c.fill(0, pinned=True)
        for i in range(1, 20):
            c.fill(i * set_stride)
        assert c.access(0, False).hit
        assert c.pinned_lines == 1

    def test_pin_quota_enforced(self):
        c = small_cache(pin_quota=0.75)  # 4 ways -> max 3 pinned
        set_stride = c.num_sets * 64
        for i in range(4):
            c.fill(i * set_stride, pinned=True)
        assert c.pinned_lines == 3
        assert c.stats.pin_refusals == 1

    def test_unpin_all(self):
        c = small_cache()
        set_stride = c.num_sets * 64
        c.fill(0, pinned=True)
        c.fill(set_stride, pinned=True)
        assert c.unpin_all() == 2
        assert c.pinned_lines == 0
        # Now pressure can evict them.
        for i in range(2, 20):
            c.fill(i * set_stride)
        assert not c.access(0, False).hit

    def test_zero_quota_pins_nothing(self):
        c = small_cache(pin_quota=0.0)
        c.fill(0, pinned=True)
        assert c.pinned_lines == 0

    def test_all_pinned_degrades_not_deadlocks(self):
        c = small_cache(pin_quota=1.0, ways=2, size_bytes=2048)
        set_stride = c.num_sets * 64
        for i in range(3):
            c.fill(i * set_stride, pinned=True)
        assert c.resident_lines >= 2  # still functional


class TestPrefetchTracking:
    def test_prefetch_fill_then_demand_hit_counted(self):
        c = small_cache()
        c.fill(0, prefetch=True)
        assert c.stats.prefetch_fills == 1
        r = c.access(0, False)
        assert r.hit and r.was_prefetched
        assert c.stats.prefetch_hits == 1
        # Second hit is no longer "first use of a prefetch".
        assert not c.access(0, False).was_prefetched

    def test_evicted_prefetch_not_counted_later(self):
        c = small_cache(ways=1, size_bytes=1024)
        c.fill(0, prefetch=True)
        c.fill(1024)  # evicts the prefetched line
        c.fill(0)
        assert not c.access(0, False).was_prefetched


class TestMaintenance:
    def test_invalidate_all(self):
        c = small_cache()
        for i in range(8):
            c.fill(i * 64)
        assert c.invalidate_all() == 8
        assert c.resident_lines == 0
        assert not c.access(0, False).hit

    def test_probe_no_side_effects(self):
        c = small_cache()
        c.fill(0)
        before = c.stats.accesses
        assert c.probe(0)
        assert not c.probe(64)
        assert c.stats.accesses == before


@settings(max_examples=30)
@given(
    addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
    policy=st.sampled_from(["lru", "srrip", "brrip", "drrip", "random"]),
)
def test_cache_never_exceeds_capacity_and_stats_consistent(addrs, policy):
    """Invariants under arbitrary access streams, any policy."""
    c = Cache("t", 2048, 2, 64, policy=policy)
    for a in addrs:
        r = c.access(a, is_write=bool(a & 1))
        if not r.hit:
            c.fill(c.line_addr(a), dirty=bool(a & 1))
    assert c.resident_lines <= 2048 // 64
    assert c.stats.hits + c.stats.misses == c.stats.accesses
    assert c.stats.writebacks <= c.stats.evictions


@settings(max_examples=30)
@given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
def test_fill_makes_resident_until_evicted(addrs):
    """After fill(a), an immediate access to a must hit."""
    c = Cache("t", 1024, 2, 64)
    for a in addrs:
        line = c.line_addr(a)
        c.fill(line)
        assert c.access(line, False).hit
