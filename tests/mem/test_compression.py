"""Tests for the compression substrate (repro.mem.compression)."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attributes import DataProperty, DataType, make_attributes
from repro.core.errors import ConfigurationError
from repro.core.pat import translate_for_compression
from repro.mem.compression import (
    BaseDeltaCompressor,
    CompressedLine,
    FloatCompressor,
    LINE_BYTES,
    SemanticCompressionEngine,
    SparseCompressor,
    ZeroLineCompressor,
)


def prims(**kw):
    return translate_for_compression(make_attributes("x", **kw))


class TestZeroLine:
    def test_zero_line(self):
        c = ZeroLineCompressor()
        comp = c.compress(b"\x00" * 64)
        assert comp is not None
        assert comp.size_bytes == 2
        assert c.decompress(comp) == b"\x00" * 64

    def test_uniform_nonzero(self):
        c = ZeroLineCompressor()
        comp = c.compress(b"\xAB" * 64)
        assert c.decompress(comp) == b"\xAB" * 64

    def test_mixed_line_declines(self):
        c = ZeroLineCompressor()
        assert c.compress(b"\x00" * 63 + b"\x01") is None

    def test_wrong_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ZeroLineCompressor().compress(b"\x00" * 32)


class TestBaseDelta:
    def make_line(self, base, deltas):
        return struct.pack("<8Q", *[(base + d) & (2**64 - 1)
                                    for d in deltas])

    def test_clustered_pointers(self):
        c = BaseDeltaCompressor()
        line = self.make_line(0x7F00_0000_0000, range(0, 64, 8))
        comp = c.compress(line)
        assert comp is not None
        assert comp.size_bytes < 64
        assert c.decompress(comp) == line

    def test_width_selection(self):
        c = BaseDeltaCompressor()
        tight = c.compress(self.make_line(10**15, [0, 1, 2, 3, 4, 5, 6, 7]))
        loose = c.compress(self.make_line(10**15,
                                          [0, 1000, 2000, 3000, 60000,
                                           5, 6, 7]))
        assert tight.size_bytes < loose.size_bytes

    def test_negative_deltas(self):
        c = BaseDeltaCompressor()
        line = self.make_line(10**12, [0, -1, -2, 3, -4, 5, -6, 7])
        comp = c.compress(line)
        assert c.decompress(comp) == line

    def test_scattered_values_decline(self):
        c = BaseDeltaCompressor()
        line = struct.pack("<8Q", *[i * 0x123456789AB for i in range(8)])
        assert c.compress(line) is None

    @given(st.integers(0, 2**63), st.lists(st.integers(-100, 100),
                                           min_size=8, max_size=8))
    def test_roundtrip(self, base, deltas):
        c = BaseDeltaCompressor()
        line = self.make_line(base, deltas)
        comp = c.compress(line)
        assert comp is not None
        assert c.decompress(comp) == line


class TestFloat:
    def test_clustered_exponents(self):
        c = FloatCompressor()
        vals = np.random.default_rng(1).normal(1.0, 0.01, 8)
        line = vals.astype("<f8").tobytes()
        comp = c.compress(line)
        assert comp is not None
        assert comp.size_bytes < 64
        assert c.decompress(comp) == line

    def test_wild_exponents_decline(self):
        c = FloatCompressor()
        vals = np.array([1e-300, 1e300, 1.0, 1e-10, 1e10, 2.0, 3e5,
                         7e-5])
        assert c.compress(vals.astype("<f8").tobytes()) is None

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0,
                              allow_nan=False), min_size=8, max_size=8))
    def test_roundtrip_narrow_range(self, vals):
        c = FloatCompressor()
        line = np.array(vals, dtype="<f8").tobytes()
        comp = c.compress(line)
        assert comp is not None
        assert c.decompress(comp) == line


class TestSparse:
    def test_mostly_zero(self):
        c = SparseCompressor(8)
        line = bytearray(64)
        line[8:16] = b"\x01" * 8
        comp = c.compress(bytes(line))
        assert comp is not None
        assert comp.size_bytes == 1 + 8
        assert c.decompress(comp) == bytes(line)

    def test_dense_declines(self):
        c = SparseCompressor(8)
        assert c.compress(b"\x01" * 64) is None

    def test_element_widths(self):
        for width in (1, 2, 4, 8):
            c = SparseCompressor(width)
            line = bytearray(64)
            line[0] = 7
            comp = c.compress(bytes(line))
            assert c.decompress(comp) == bytes(line)

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            SparseCompressor(3)

    @given(st.sets(st.integers(0, 7), max_size=3))
    def test_roundtrip(self, positions):
        c = SparseCompressor(8)
        line = bytearray(64)
        for p in positions:
            line[p * 8:(p + 1) * 8] = b"\xFF" * 8
        comp = c.compress(bytes(line))
        assert comp is not None
        assert c.decompress(comp) == bytes(line)


class TestSemanticEngine:
    def engine(self, prim_map):
        return SemanticCompressionEngine(
            lambda paddr: prim_map.get(paddr // 4096)
        )

    def test_sparse_semantics_picks_sparse(self):
        eng = self.engine({0: prims(data_type=DataType.FLOAT64,
                                    properties=(DataProperty.SPARSE,))})
        line = bytearray(64)
        line[0:8] = struct.pack("<d", 1.5)
        comp = eng.compress_line(0, bytes(line))
        assert comp.scheme == "sparse"
        assert eng.decompress_line(comp) == bytes(line)

    def test_pointer_semantics_picks_delta(self):
        eng = self.engine({0: prims(data_type=DataType.INT64,
                                    properties=(DataProperty.POINTER,))})
        line = struct.pack("<8Q", *[0x7000_0000 + i * 8
                                    for i in range(8)])
        comp = eng.compress_line(0, line)
        assert comp.scheme == "base_delta"
        assert eng.decompress_line(comp) == line

    def test_no_atom_gets_baseline_only(self):
        eng = self.engine({})
        line = struct.pack("<8Q", *[0x7000_0000 + i * 8
                                    for i in range(8)])
        comp = eng.compress_line(0, line)
        assert comp.scheme == "raw"          # delta not tried blindly
        assert eng.decompress_line(comp) == line

    def test_zero_always_wins_when_applicable(self):
        eng = self.engine({0: prims(data_type=DataType.FLOAT64)})
        comp = eng.compress_line(0, b"\x00" * 64)
        assert comp.scheme == "zero"

    def test_stats_accumulate(self):
        eng = self.engine({})
        eng.compress_line(0, b"\x00" * 64)
        eng.compress_line(0, bytes(range(64)))
        assert eng.stats.lines == 2
        assert eng.stats.ratio > 1.0
        assert eng.stats.by_scheme["zero"] == 1
        assert eng.stats.by_scheme["raw"] == 1

    def test_compress_region(self):
        eng = self.engine({})
        out = eng.compress_region(0, b"\x00" * 256)
        assert len(out) == 4

    def test_region_size_validation(self):
        eng = self.engine({})
        with pytest.raises(ConfigurationError):
            eng.compress_region(0, b"\x00" * 100)

    def test_semantic_beats_blind_on_typed_data(self):
        """The Table 1 claim, end to end on real bytes."""
        rng = np.random.default_rng(3)
        floats = rng.normal(5.0, 0.1, 512).astype("<f8").tobytes()
        informed = self.engine({0: prims(data_type=DataType.FLOAT64)})
        blind = self.engine({})
        informed.compress_region(0, floats)
        blind.compress_region(0, floats)
        assert informed.stats.ratio > blind.stats.ratio
