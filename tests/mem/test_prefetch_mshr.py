"""Tests for prefetchers and MSHRs."""

import pytest

from repro.core.attributes import PatternType
from repro.core.errors import ConfigurationError
from repro.core.pat import PrefetcherPrimitives
from repro.mem.mshr import MSHRFile
from repro.mem.prefetch import MultiStridePrefetcher, XMemPrefetcher


class TestMultiStride:
    def test_no_prefetch_before_confirmation(self):
        pf = MultiStridePrefetcher()
        assert pf.observe(0) == []
        assert pf.observe(64) == []     # first delta seen

    def test_confirmed_stride_prefetches_ahead(self):
        pf = MultiStridePrefetcher(degree=2)
        pf.observe(0)
        pf.observe(64)
        out = pf.observe(128)           # delta 64 confirmed twice
        assert out == [192, 256]

    def test_stride_change_retrains(self):
        pf = MultiStridePrefetcher()
        pf.observe(0)
        pf.observe(64)
        pf.observe(128)
        assert pf.observe(128 + 200) == []   # new stride, unconfirmed

    def test_large_stride(self):
        pf = MultiStridePrefetcher(degree=1)
        pf.observe(0)
        pf.observe(1024)
        out = pf.observe(2048)
        assert out == [3072]

    def test_same_address_ignored(self):
        pf = MultiStridePrefetcher()
        pf.observe(0)
        pf.observe(64)
        pf.observe(128)
        assert pf.observe(128) == []

    def test_negative_stride(self):
        pf = MultiStridePrefetcher(degree=1)
        pf.observe(4000)
        pf.observe(4000 - 64)
        out = pf.observe(4000 - 128)
        assert out == [4000 - 192 - (4000 - 192) % 64]

    def test_negative_target_clipped(self):
        pf = MultiStridePrefetcher(degree=4)
        pf.observe(256)
        pf.observe(128)
        out = pf.observe(0)
        assert all(t >= 0 for t in out)

    def test_stream_capacity_lru(self):
        pf = MultiStridePrefetcher(streams=2)
        pf.observe(0 * 4096)
        pf.observe(1 * 4096)
        pf.observe(2 * 4096)     # evicts region 0
        assert pf.active_streams == 2
        # Region 0 must retrain from scratch.
        pf.observe(0 * 4096 + 64)
        pf.observe(0 * 4096 + 128)
        assert pf.observe(0 * 4096 + 192) != []  # retrained after 2 deltas

    def test_distinct_streams_tracked_independently(self):
        pf = MultiStridePrefetcher(streams=16, degree=1)
        # Interleave two streams in different 4KB regions.
        for i in range(3):
            a = pf.observe(i * 64)
            b = pf.observe(8192 + i * 128)
        assert a == [3 * 64]
        assert b == [8192 + 3 * 128]


def make_xmem_pf(atom_at, spans, pattern=PatternType.REGULAR, stride=64,
                 degree=2):
    prims = PrefetcherPrimitives(pattern=pattern, stride_bytes=stride
                                 if pattern is PatternType.REGULAR else 0)
    pf = XMemPrefetcher(lookup_atom=lambda a: atom_at(a), degree=degree)
    pf.set_pinned_atoms({7: XMemPrefetcher.entry(prims, spans)})
    return pf


class TestXMemPrefetcher:
    def test_prefetch_follows_stride(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)], stride=64, degree=2)
        assert pf.on_demand_miss(0) == [64, 128]

    def test_sub_line_stride_advances_full_lines(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)], stride=8, degree=2)
        assert pf.on_demand_miss(0) == [64, 128]

    def test_stays_inside_atom_range(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 128)], stride=64, degree=4)
        assert pf.on_demand_miss(0) == [64]

    def test_no_atom_no_prefetch(self):
        pf = make_xmem_pf(lambda a: None, [(0, 1 << 20)])
        assert pf.on_demand_miss(0) == []

    def test_unpinned_atom_no_prefetch(self):
        pf = make_xmem_pf(lambda a: 3, [(0, 1 << 20)])  # atom 3 not in PAT
        assert pf.on_demand_miss(0) == []

    def test_irregular_streams_sequentially(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)],
                          pattern=PatternType.IRREGULAR, degree=3)
        assert pf.on_demand_miss(128) == [192, 256, 320]

    def test_non_det_never_prefetches(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)],
                          pattern=PatternType.NON_DET)
        assert pf.on_demand_miss(0) == []

    def test_negative_stride(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)], stride=-64, degree=2)
        assert pf.on_demand_miss(256) == [192, 128]

    def test_set_pinned_atoms_replaces(self):
        pf = make_xmem_pf(lambda a: 7, [(0, 1 << 20)])
        pf.set_pinned_atoms({})
        assert pf.on_demand_miss(0) == []


class TestMSHR:
    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(0)

    def test_reserve_without_pressure(self):
        m = MSHRFile(4)
        assert m.reserve(now=10, completes_at=100) == 10
        assert m.outstanding == 1

    def test_full_stalls_until_oldest(self):
        m = MSHRFile(2)
        m.reserve(0, 100)
        m.reserve(0, 200)
        start = m.reserve(0, 300)
        assert start == 100           # stalled until oldest completed
        assert m.stats.full_stalls == 1

    def test_drain_until(self):
        m = MSHRFile(2)
        m.reserve(0, 50)
        m.reserve(0, 60)
        m.drain_until(55)
        assert m.outstanding == 1
        assert m.reserve(56, 99) == 56

    def test_completion_queries(self):
        m = MSHRFile(4)
        assert m.oldest_completion() is None
        m.reserve(0, 30)
        m.reserve(0, 10)
        assert m.oldest_completion() == 10
        assert m.latest_completion() == 30

    def test_flush(self):
        m = MSHRFile(4)
        m.reserve(0, 10)
        m.flush()
        assert m.outstanding == 0
