"""Tests for the Use-Case-1 cache controller (greedy pinning)."""

import pytest

from repro.core.attributes import PatternType
from repro.core.xmemlib import XMemLib
from repro.mem.cache import Cache
from repro.mem.prefetch import XMemPrefetcher
from repro.policies.cache_mgmt import CacheController, _prefix_spans


def setup(llc_bytes=64 * 1024, with_prefetcher=True):
    lib = XMemLib()
    llc = Cache("L3", llc_bytes, 16, 64, policy="drrip")
    pf = (XMemPrefetcher(lookup_atom=lib.process.amu.lookup)
          if with_prefetcher else None)
    ctrl = CacheController(lib, llc, prefetcher=pf)
    return lib, llc, pf, ctrl


def make_tile(lib, name="tile", reuse=200, start=0, size=16 * 1024,
              stride=8):
    atom = lib.create_atom(name, pattern=PatternType.REGULAR,
                           stride_bytes=stride, reuse=reuse)
    lib.atom_map(atom, start, size)
    lib.atom_activate(atom)
    return atom


class TestGreedyPinning:
    def test_fitting_atom_fully_pinned(self):
        lib, llc, pf, ctrl = setup()
        atom = make_tile(lib, size=16 * 1024)
        assert ctrl.pinned_atom_ids == {atom}
        assert ctrl.pinned_bytes() == 16 * 1024

    def test_oversized_atom_partially_pinned(self):
        # WS 2x the cache: pin 75% of the cache, prefetch the rest.
        lib, llc, pf, ctrl = setup(llc_bytes=64 * 1024)
        atom = make_tile(lib, size=128 * 1024)
        assert ctrl.pinned_atom_ids == {atom}
        assert ctrl.pinned_bytes() == int(64 * 1024 * 0.75)

    def test_highest_reuse_first(self):
        lib, llc, pf, ctrl = setup(llc_bytes=64 * 1024)
        low = make_tile(lib, "low", reuse=10, start=0, size=40 * 1024)
        high = make_tile(lib, "high", reuse=250, start=1 << 20,
                         size=40 * 1024)
        # Budget 48KB: the high-reuse atom gets its full 40KB; the
        # low-reuse atom gets the 8KB remainder.
        spans = ctrl._pin_spans
        assert sum(e - s for s, e in spans[high]) == 40 * 1024
        assert sum(e - s for s, e in spans[low]) == 8 * 1024

    def test_zero_reuse_never_pinned(self):
        lib, llc, pf, ctrl = setup()
        atom = make_tile(lib, reuse=0)
        assert ctrl.pinned_atom_ids == set()

    def test_inactive_atom_not_pinned(self):
        lib, llc, pf, ctrl = setup()
        atom = make_tile(lib)
        lib.atom_deactivate(atom)
        assert ctrl.pinned_atom_ids == set()

    def test_refresh_runs_on_xmemlib_events(self):
        lib, llc, pf, ctrl = setup()
        before = ctrl.stats.refreshes
        atom = make_tile(lib)  # map + activate = 2 notifications
        assert ctrl.stats.refreshes >= before + 2

    def test_remap_moves_pinning_and_ages_lines(self):
        lib, llc, pf, ctrl = setup()
        atom = make_tile(lib, size=16 * 1024)
        # Simulate resident pinned lines.
        for i in range(8):
            llc.fill(i * 64, pinned=True)
        assert llc.pinned_lines == 8
        lib.atom_remap(atom, 1 << 20, 16 * 1024)
        assert llc.pinned_lines == 0  # aged on the change
        assert ctrl.pin_predicate((1 << 20))
        assert not ctrl.pin_predicate(0)


class TestPinPredicate:
    def test_respects_partial_spans(self):
        lib, llc, pf, ctrl = setup(llc_bytes=64 * 1024)
        atom = make_tile(lib, size=128 * 1024)
        limit = int(64 * 1024 * 0.75)
        assert ctrl.pin_predicate(0)
        assert ctrl.pin_predicate(limit - 64)
        assert not ctrl.pin_predicate(limit)
        assert not ctrl.pin_predicate(127 * 1024)

    def test_unmapped_address_not_pinned(self):
        lib, llc, pf, ctrl = setup()
        make_tile(lib, start=0, size=4096)
        assert not ctrl.pin_predicate(1 << 30)

    def test_no_atoms_cheap_false(self):
        lib, llc, pf, ctrl = setup()
        assert not ctrl.pin_predicate(0)


class TestPrefetcherArming:
    def test_fully_pinned_atom_not_armed(self):
        # A fully resident working set needs no semantic prefetching;
        # arming it would only waste bandwidth.
        lib, llc, pf, ctrl = setup()
        make_tile(lib, size=16 * 1024, stride=8)
        assert pf.on_demand_miss(0) == []

    def test_partially_pinned_atom_armed_with_full_spans(self):
        lib, llc, pf, ctrl = setup(llc_bytes=64 * 1024)
        make_tile(lib, size=128 * 1024, stride=8)
        # A miss inside the pinned prefix prefetches along its stride,
        # and targets may extend across the whole atom.
        targets = pf.on_demand_miss(0)
        assert targets
        assert all(0 < t < 128 * 1024 for t in targets)

    def test_prefetcher_covers_unpinned_tail(self):
        lib, llc, pf, ctrl = setup(llc_bytes=64 * 1024)
        atom = make_tile(lib, size=128 * 1024)
        # Miss in the unpinned tail still triggers prefetching (the
        # "prefetch the rest" path).
        targets = pf.on_demand_miss(100 * 1024)
        assert targets

    def test_disarmed_when_deactivated(self):
        lib, llc, pf, ctrl = setup()
        atom = make_tile(lib)
        lib.atom_deactivate(atom)
        assert pf.on_demand_miss(0) == []

    def test_controller_without_prefetcher(self):
        lib, llc, pf, ctrl = setup(with_prefetcher=False)
        make_tile(lib)  # must not raise
        assert ctrl.pinned_atom_ids


class TestPrefixSpans:
    def test_exact_fit(self):
        assert _prefix_spans([(0, 100)], 100) == [(0, 100)]

    def test_truncates(self):
        assert _prefix_spans([(0, 100)], 40) == [(0, 40)]

    def test_spills_across_spans(self):
        assert _prefix_spans([(0, 100), (200, 300)], 150) == \
            [(0, 100), (200, 250)]

    def test_zero_budget(self):
        assert _prefix_spans([(0, 100)], 0) == []
