"""Cross-layer integration tests: the whole stack working together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attributes import PatternType
from repro.cpu.trace import MemAccess, XMemOp, strip_xmem
from repro.dram.mapping import DramGeometry
from repro.sim import build_baseline, build_xmem, scaled_config
from repro.sim.usecase2 import run_system
from repro.workloads.polybench import KERNELS
from repro.workloads.suite import BY_NAME
from repro.xos.loader import OperatingSystem


class TestHintOnlySemantics:
    """XMem is supplemental: dropping it never changes functionality."""

    def test_stripped_trace_has_identical_accesses(self):
        k = KERNELS["gemm"]
        from repro.core.xmemlib import XMemLib
        instrumented = list(k.build_trace(16, 8, lib=XMemLib()))
        plain = list(k.build_trace(16, 8))
        stripped = [e for e in strip_xmem(instrumented)]
        assert stripped == plain

    def test_xmem_system_sees_same_access_count(self):
        cfg = scaled_config(16)
        k = KERNELS["syrk"]
        base = build_baseline(cfg)
        b = base.run(k.build_trace(32, 16))
        xmem = build_xmem(cfg)
        x = xmem.run(k.build_trace(32, 16, lib=xmem.xmemlib))
        assert b.mem_accesses == x.mem_accesses

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_arbitrary_traces_run_on_both_systems(self, addrs):
        cfg = scaled_config(16)
        trace = [MemAccess(a - a % 8, bool(a & 1), work=1) for a in addrs]
        base = build_baseline(cfg).run(list(trace))
        xmem = build_xmem(cfg).run(list(trace))
        assert base.mem_accesses == xmem.mem_accesses == len(addrs)
        assert base.cycles > 0 and xmem.cycles > 0


class TestEndToEndAtomFlow:
    def test_compile_load_run_cycle(self):
        """Compile-time summarization -> OS load -> hardware query."""
        from repro.core.xmemlib import XMemLib

        # "Compile": a program creates atoms; the compiler summarizes.
        author = XMemLib()
        author.create_atom("weights", pattern=PatternType.REGULAR,
                           stride_bytes=8, reuse=200)
        author.create_atom("graph", pattern=PatternType.IRREGULAR,
                           access_intensity=100)
        segment = author.compile_segment()

        # "Load": the OS reads the segment into a fresh process.
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        assert osys.load_program(proc, segment) == 2
        # The PATs are filled by the Attribute Translator.
        assert proc.xmem.pats["cache"].lookup(0).reuse == 200
        assert proc.xmem.pats["dram"].lookup(1).irregular

    def test_atom_queries_after_page_mapping(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        lib = proc.xmemlib
        atom = lib.create_atom("buf", reuse=50)
        va = proc.malloc_mapped(3 * 4096, atom)
        # Every page of the allocation resolves to the atom in PA space.
        for off in (0, 4096, 2 * 4096 + 100):
            pa = proc.translate(va + off)
            assert proc.xmem.amu.lookup(pa) == atom

    def test_scattered_frames_still_resolve(self):
        # Randomized allocation scatters frames; the AAM is PA-indexed
        # and must resolve each scattered page.
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24),
                               allocator="randomized")
        proc = osys.create_process()
        lib = proc.xmemlib
        atom = lib.create_atom("buf", reuse=50)
        va = proc.malloc_mapped(8 * 4096, atom)
        frames = {proc.page_table.frame_of(va // 4096 + i)
                  for i in range(8)}
        assert len(frames) == 8
        for i in range(8):
            pa = proc.translate(va + i * 4096)
            assert proc.xmem.amu.lookup(pa) == atom


class TestContextSwitch:
    """Section 4.3: per-process AST/PAT state, global AAM."""

    def test_two_processes_on_one_machine(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        p1 = osys.create_process()
        p2 = osys.create_process()
        a1 = p1.xmemlib.create_atom("p1data", reuse=10)
        a2 = p2.xmemlib.create_atom("p2data", reuse=20)
        va1 = p1.malloc_mapped(4096, a1)
        va2 = p2.malloc_mapped(4096, a2)
        # Each process's XMem view resolves its own data only.
        assert p1.xmem.amu.lookup(p1.translate(va1)) == a1
        assert p2.xmem.amu.lookup(p2.translate(va2)) == a2
        assert p1.xmem.amu.lookup(p2.translate(va2)) is None

    def test_ast_snapshot_roundtrip_through_switch(self):
        from repro.core.xmemlib import XMemLib
        lib = XMemLib()
        a = lib.create_atom("x", reuse=1)
        lib.atom_map(a, 0, 4096)
        lib.atom_activate(a)
        amu = lib.process.amu
        saved = amu.ast.snapshot()
        # Switch to an "empty" process and back.
        amu.context_switch(bytes(len(saved)))
        assert amu.lookup(0) is None
        amu.context_switch(saved)
        assert amu.lookup(0) == a


class TestUseCasesSmoke:
    def test_usecase1_full_path(self):
        cfg = scaled_config(16)
        handle = build_xmem(cfg)
        k = KERNELS["jacobi2d"]
        stats = handle.run(k.build_trace(64, 64, lib=handle.xmemlib))
        assert stats.cycles > 0
        assert handle.controller.stats.refreshes > 0
        assert handle.xmemlib.process.amu.alb.stats.lookups > 0

    def test_usecase2_full_path(self):
        r = run_system(BY_NAME["leslie3d"], "xmem", accesses=20_000)
        assert r.record.cycles > 0
        assert "isolated" in r.placement_report
