"""Tests for DRAM timing and address-mapping schemes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.dram.mapping import (
    ALL_SCHEMES,
    DramGeometry,
    FieldOrderMapping,
    make_mapping,
)
from repro.dram.timing import DramTiming, ddr3_1066


class TestTiming:
    def test_latency_ordering(self):
        t = ddr3_1066()
        assert t.row_hit_latency < t.row_closed_latency
        assert t.row_closed_latency < t.row_conflict_latency

    def test_ddr3_values_in_cpu_cycles(self):
        t = ddr3_1066(cpu_ghz=3.6)
        # tCL = 13.125ns * 3.6 cycles/ns = 47.25 cycles.
        assert t.t_cl == pytest.approx(47.25)
        assert t.t_burst == pytest.approx(27.0)

    def test_bandwidth_scaling(self):
        t = ddr3_1066()
        half = t.scaled_bandwidth(0.5)
        assert half.t_burst == pytest.approx(2 * t.t_burst)
        assert half.t_cl == t.t_cl  # latency unchanged

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ddr3_1066().scaled_bandwidth(0)

    def test_positive_params_enforced(self):
        with pytest.raises(ConfigurationError):
            DramTiming(t_cl=0, t_rcd=1, t_rp=1, t_burst=1)


class TestGeometry:
    def test_defaults_match_table3(self):
        g = DramGeometry()
        assert g.channels == 2
        assert g.ranks_per_channel == 1
        assert g.banks_per_rank == 8
        assert g.total_banks == 16

    def test_rows_derived_from_capacity(self):
        g = DramGeometry(capacity_bytes=1 << 30)
        assert g.rows_per_bank * g.total_banks * g.row_bytes == 1 << 30

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigurationError):
            DramGeometry(channels=3)

    def test_lines_per_row(self):
        assert DramGeometry(row_bytes=8192).lines_per_row == 128


class TestMappings:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_all_schemes_constructible(self, name):
        m = make_mapping(name, DramGeometry())
        a = m.decompose(0x123456)
        g = DramGeometry()
        assert 0 <= a.channel < g.channels
        assert 0 <= a.rank < g.ranks_per_channel
        assert 0 <= a.bank < g.banks_per_rank
        assert 0 <= a.row < g.rows_per_bank
        assert 0 <= a.col < g.lines_per_row

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            make_mapping("scheme99", DramGeometry())

    def test_same_line_same_coords(self):
        m = make_mapping("scheme2", DramGeometry())
        assert m.decompose(64) == m.decompose(100)

    def test_scheme2_sequential_lines_same_row(self):
        # Row-interleaved: a whole row of consecutive lines maps to one
        # bank/row (high RBL for streaming).
        g = DramGeometry()
        m = make_mapping("scheme2", g)
        first = m.decompose(0)
        for line in range(g.lines_per_row):
            a = m.decompose(line * 64)
            assert a.bank_key == first.bank_key
            assert a.row == first.row

    def test_scheme5_sequential_lines_interleave_channels(self):
        g = DramGeometry()
        m = make_mapping("scheme5", g)
        # Channel rotates every col_low group (8 lines = 512B).
        chans = {m.decompose(line * 64).channel for line in range(16)}
        assert len(chans) == g.channels

    def test_field_order_validation(self):
        g = DramGeometry()
        with pytest.raises(ConfigurationError):
            FieldOrderMapping(g, "bad", ["col_low", "bank"])
        with pytest.raises(ConfigurationError):
            FieldOrderMapping(
                g, "bad2",
                ["col_high", "col_low", "bank", "row", "rank", "channel"],
            )

    def test_permutation_spreads_conflicting_rows(self):
        # Addresses that differ only in low row bits must land in
        # different banks under the permutation scheme.
        g = DramGeometry()
        base = make_mapping("scheme2", g)
        perm = make_mapping("permutation", g)
        row_stride = g.row_bytes * g.banks_per_rank  # bumps row, same bank
        base_banks = {base.decompose(i * row_stride * g.channels).bank
                      for i in range(8)}
        perm_banks = {perm.decompose(i * row_stride * g.channels).bank
                      for i in range(8)}
        assert len(perm_banks) > len(base_banks)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_decompose_total_and_deterministic(self, name):
        m = make_mapping(name, DramGeometry())
        for addr in (0, 63, 64, 4096, 1 << 20, (1 << 30) - 1, 1 << 31):
            assert m.decompose(addr) == m.decompose(addr)


@given(addr=st.integers(0, (1 << 34)),
       name=st.sampled_from(list(ALL_SCHEMES)))
def test_coordinates_always_in_range(addr, name):
    g = DramGeometry()
    a = make_mapping(name, g).decompose(addr)
    assert 0 <= a.channel < g.channels
    assert 0 <= a.bank < g.banks_per_rank
    assert 0 <= a.row < g.rows_per_bank
    assert 0 <= a.col < g.lines_per_row


@given(addr=st.integers(0, (1 << 30) - 1))
def test_scheme2_bijective_over_capacity(addr):
    """Distinct lines within capacity map to distinct coordinates."""
    g = DramGeometry()
    m = make_mapping("scheme2", g)
    a = m.decompose(addr)
    # Reconstruct the line index from the coordinates.
    line = addr // 64
    rebuilt = a.col & 7
    shift = 3
    rebuilt |= (a.col >> 3) << shift
    shift += 4  # col_high bits (128 lines/row -> 7 col bits total)
    rebuilt |= a.bank << shift
    shift += 3
    rebuilt |= a.row << shift
    shift += (g.rows_per_bank - 1).bit_length()
    rebuilt |= a.channel << shift
    assert rebuilt == line
