"""Property-based tests for the FR-FCFS scheduler and DRAM system."""

from hypothesis import given, settings, strategies as st

from repro.dram.mapping import DramGeometry
from repro.dram.scheduler import FRFCFSScheduler, Request
from repro.dram.system import DramSystem


def small_system(**kw):
    kw.setdefault("geometry", DramGeometry(capacity_bytes=1 << 24))
    return DramSystem(**kw)


requests = st.builds(
    Request,
    paddr=st.integers(0, (1 << 22) - 1).map(lambda a: a - a % 64),
    arrival=st.floats(min_value=0, max_value=10_000,
                      allow_nan=False, allow_infinity=False),
    is_write=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(requests, min_size=1, max_size=60))
def test_every_request_serviced_exactly_once(reqs):
    reqs = [Request(r.paddr, r.arrival, r.is_write, i)
            for i, r in enumerate(reqs)]
    sched = FRFCFSScheduler(small_system())
    completions = sched.service(list(reqs))
    assert sorted(c.request.req_id for c in completions) == \
        sorted(r.req_id for r in reqs)


@settings(max_examples=40, deadline=None)
@given(st.lists(requests, min_size=1, max_size=60))
def test_completions_causal(reqs):
    reqs = [Request(r.paddr, r.arrival, r.is_write, i)
            for i, r in enumerate(reqs)]
    sched = FRFCFSScheduler(small_system())
    for c in sched.service(list(reqs)):
        assert c.result.completes_at > c.request.arrival
        assert c.latency > 0


@settings(max_examples=40, deadline=None)
@given(st.lists(requests, min_size=1, max_size=60))
def test_stats_match_request_mix(reqs):
    reqs = [Request(r.paddr, r.arrival, r.is_write, i)
            for i, r in enumerate(reqs)]
    dram = small_system()
    FRFCFSScheduler(dram).service(list(reqs))
    assert dram.stats.reads == sum(1 for r in reqs if not r.is_write)
    assert dram.stats.writes == sum(1 for r in reqs if r.is_write)
    total = (dram.stats.row_hits + dram.stats.row_closed
             + dram.stats.row_conflicts)
    assert total == len(reqs)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, (1 << 22) - 64), min_size=2,
                max_size=80),
       st.floats(min_value=1.0, max_value=200.0))
def test_monotone_now_never_breaks_system(addrs, gap):
    """Direct DramSystem access with monotone arrivals: completions
    are monotone per bank and latency is at least the row-hit floor."""
    dram = small_system()
    floor = dram.timing.row_hit_latency
    now = 0.0
    per_bank = {}
    for a in addrs:
        res = dram.access(a - a % 64, now)
        assert res.latency >= floor - 1e-9
        key = res.address.bank_key
        if key in per_bank:
            assert res.completes_at > per_bank[key] - 1e-9
        per_bank[key] = res.completes_at
        now += gap
