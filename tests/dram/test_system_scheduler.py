"""Tests for the DRAM system and FR-FCFS scheduler."""

import pytest

from repro.dram.bank import Bank, RowOutcome
from repro.dram.mapping import DramGeometry
from repro.dram.scheduler import FRFCFSScheduler, Request
from repro.dram.system import DramSystem
from repro.dram.timing import ddr3_1066

T = ddr3_1066()


def small_system(**kw):
    kw.setdefault("geometry", DramGeometry(capacity_bytes=1 << 26))
    return DramSystem(**kw)


class TestBank:
    def test_classification(self):
        b = Bank()
        assert b.classify(5) is RowOutcome.CLOSED
        b.access(5, 0.0, T)
        assert b.classify(5) is RowOutcome.HIT
        assert b.classify(6) is RowOutcome.CONFLICT

    def test_latencies(self):
        b = Bank()
        t0 = b.access(1, 0.0, T)             # closed
        assert t0 == pytest.approx(T.t_rcd + T.t_cl)
        t1 = b.access(1, 100.0, T)           # hit
        assert t1 == pytest.approx(100 + T.t_cl)
        t2 = b.access(2, 200.0, T)           # conflict
        assert t2 == pytest.approx(200 + T.t_rp + T.t_rcd + T.t_cl)

    def test_force_hit(self):
        b = Bank()
        b.access(1, 0.0, T)
        t = b.access(2, 100.0, T, force_hit=True)
        assert t == pytest.approx(100 + T.t_cl)
        assert b.stats.row_hits == 1
        assert b.stats.row_closed == 1

    def test_stats(self):
        b = Bank()
        b.access(1, 0.0, T)
        b.access(1, 0.0, T)
        b.access(2, 0.0, T)
        assert b.stats.accesses == 3
        assert b.stats.row_hit_rate == pytest.approx(1 / 3)


class TestDramSystem:
    def test_sequential_same_row_hits(self):
        d = small_system()
        first = d.access(0, 0.0)
        second = d.access(64, first.completes_at)
        assert first.outcome is RowOutcome.CLOSED
        assert second.outcome is RowOutcome.HIT
        assert second.latency < first.latency

    def test_row_conflict_costs_more(self):
        d = small_system()
        g = d.geometry
        r0 = d.access(0, 0.0)
        # Same bank, different row (scheme2: row above bank).
        conflict_addr = g.row_bytes * g.banks_per_rank * g.channels
        assert d.mapping.decompose(conflict_addr).bank_key == \
            r0.address.bank_key
        r1 = d.access(conflict_addr, 1000.0)
        assert r1.outcome is RowOutcome.CONFLICT
        assert r1.latency > r0.latency

    def test_bank_serialization_queues(self):
        d = small_system()
        # Two simultaneous requests to the same bank, different rows.
        g = d.geometry
        conflict_addr = g.row_bytes * g.banks_per_rank * g.channels
        a = d.access(0, 0.0)
        b = d.access(conflict_addr, 0.0)
        assert b.completes_at > a.completes_at
        assert b.latency > b.completes_at - a.completes_at

    def test_bank_parallelism_overlaps(self):
        d = small_system()
        # Simultaneous requests to different banks overlap except for
        # the shared channel burst.
        a = d.access(0, 0.0)
        b = d.access(d.geometry.row_bytes * d.geometry.channels, 0.0)
        assert d.mapping.decompose(0).bank_key != \
            d.mapping.decompose(d.geometry.row_bytes *
                                d.geometry.channels).bank_key
        assert b.completes_at - a.completes_at == pytest.approx(T.t_burst)

    def test_channel_bandwidth_serializes_bursts(self):
        d = small_system()
        g = d.geometry
        # Many banks, same channel, all at time 0.
        results = []
        for b in range(4):
            addr = b * g.row_bytes * g.channels
            results.append(d.access(addr, 0.0))
        times = sorted(r.completes_at for r in results)
        for t0, t1 in zip(times, times[1:]):
            assert t1 - t0 >= T.t_burst - 1e-9

    def test_perfect_rbl_flag(self):
        d = small_system(perfect_rbl=True)
        g = d.geometry
        conflict_addr = g.row_bytes * g.banks_per_rank * g.channels
        d.access(0, 0.0)
        r = d.access(conflict_addr, 1000.0)
        assert r.outcome is RowOutcome.HIT
        assert d.stats.row_hit_rate == 1.0

    def test_read_write_accounted_separately(self):
        d = small_system()
        d.access(0, 0.0, is_write=False)
        d.access(64, 1000.0, is_write=True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1
        assert d.stats.avg_read_latency > 0
        assert d.stats.avg_write_latency > 0

    def test_banks_touched(self):
        d = small_system()
        d.access(0, 0.0)
        d.access(d.geometry.row_bytes * d.geometry.channels, 0.0)
        assert d.banks_touched() == 2

    def test_reset_time_keeps_stats(self):
        d = small_system()
        d.access(0, 0.0)
        d.reset_time()
        assert d.stats.accesses == 1
        r = d.access(64, 0.0)
        assert r.outcome is RowOutcome.HIT  # open row survives reset

    def test_bandwidth_scaling_increases_latency_under_load(self):
        fast = small_system()
        slow = small_system(timing=T.scaled_bandwidth(0.25))
        for i in range(64):
            fast.access(i * 64, 0.0)
            slow.access(i * 64, 0.0)
        assert slow.stats.avg_read_latency > fast.stats.avg_read_latency


class TestFRFCFS:
    def test_row_hit_jumps_queue(self):
        d = small_system()
        g = d.geometry
        sched = FRFCFSScheduler(d)
        same_bank_other_row = g.row_bytes * g.banks_per_rank * g.channels
        # Open row 0 of bank 0 first; then a conflicting request and a
        # row-hit request arrive together -- the younger row hit wins.
        reqs = [
            Request(paddr=0, arrival=0.0, req_id=0),
            Request(paddr=same_bank_other_row, arrival=200.0, req_id=1),
            Request(paddr=128, arrival=200.0, req_id=2),  # row hit
        ]
        completions = sched.service(reqs)
        served_ids = [c.request.req_id for c in completions]
        assert served_ids == [0, 2, 1]
        assert sched.reordered >= 1

    def test_fcfs_when_no_ready_row_hit(self):
        d = small_system()
        sched = FRFCFSScheduler(d)
        g = d.geometry
        reqs = [
            Request(paddr=0, arrival=0.0, req_id=0),
            Request(paddr=g.row_bytes * g.channels, arrival=0.0, req_id=1),
        ]
        completions = sched.service(reqs)
        assert [c.request.req_id for c in completions] == [0, 1]

    def test_all_requests_serviced_once(self):
        d = small_system()
        sched = FRFCFSScheduler(d)
        reqs = [Request(paddr=i * 4096, arrival=float(i), req_id=i)
                for i in range(50)]
        completions = sched.service(reqs)
        assert sorted(c.request.req_id for c in completions) == \
            list(range(50))

    def test_latency_positive(self):
        d = small_system()
        sched = FRFCFSScheduler(d)
        completions = sched.service(
            [Request(paddr=i * 64, arrival=0.0, req_id=i) for i in range(10)]
        )
        assert all(c.latency > 0 for c in completions)
