"""Integration tests for the Use-Case-2 runner (Section 6)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.usecase2 import (
    BASELINE_MAPPING_CANDIDATES,
    pick_baseline_mapping,
    run_figure7,
    run_system,
    usecase2_config,
)
from repro.workloads.suite import BY_NAME

#: Truncated runs keep these tests fast while exercising every path.
FAST = 15_000


class TestRunSystem:
    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            run_system(BY_NAME["sc"], "oracle")

    def test_baseline_produces_record(self):
        r = run_system(BY_NAME["sc"], "baseline", accesses=FAST)
        assert r.record.system == "baseline"
        assert r.record.cycles > 0
        assert r.record.dram_read_latency > 0
        assert r.placement_report is None

    def test_xmem_reports_placement(self):
        r = run_system(BY_NAME["lbm"], "xmem", accesses=FAST)
        assert r.placement_report is not None
        assert "isolated" in r.placement_report

    def test_ideal_has_perfect_rbl(self):
        r = run_system(BY_NAME["lbm"], "ideal", accesses=FAST)
        assert r.record.dram_row_hit_rate == pytest.approx(1.0)

    def test_mapping_honoured(self):
        r = run_system(BY_NAME["sc"], "baseline", mapping="scheme5",
                       accesses=FAST)
        assert r.mapping == "scheme5"
        assert r.record.params["mapping"] == "scheme5"


class TestFigure7Shape:
    def test_ideal_beats_baseline_on_streaming(self):
        res = {
            s: run_system(BY_NAME["GemsFDTD"], s, accesses=40_000)
            for s in ("baseline", "ideal")
        }
        assert res["ideal"].cycles < res["baseline"].cycles

    def test_xmem_between_baseline_and_ideal_streaming(self):
        w = BY_NAME["lbm"]
        base = run_system(w, "baseline", accesses=60_000)
        xmem = run_system(w, "xmem", accesses=60_000)
        # The multi-stream workload must benefit from isolation.
        assert xmem.cycles < base.cycles
        # And the gain is driven by lower read latency.
        assert xmem.record.dram_read_latency < \
            base.record.dram_read_latency

    def test_low_headroom_workload_near_parity(self):
        w = BY_NAME["sc"]
        base = run_system(w, "baseline", accesses=40_000)
        xmem = run_system(w, "xmem", accesses=40_000)
        ratio = base.cycles / xmem.cycles
        assert 0.9 < ratio < 1.1


class TestMappingPick:
    def test_pick_returns_candidate(self):
        m = pick_baseline_mapping(BY_NAME["sc"], probe_accesses=4_000)
        assert m in BASELINE_MAPPING_CANDIDATES

    def test_run_figure7_all_three(self):
        w = BY_NAME["histo"]
        cfg = usecase2_config()
        import dataclasses
        # Shrink the trace through the workload for speed.
        small = dataclasses.replace(w, accesses=10_000)
        res = run_figure7(small, config=cfg, pick_mapping=False)
        assert set(res) == {"baseline", "xmem", "ideal"}
        for r in res.values():
            assert r.record.cycles > 0
