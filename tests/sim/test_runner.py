"""The parallel experiment runner: record/replay, caching, fan-out.

Three properties matter and are each pinned here:

1. A replayed recording is *indistinguishable* from walking the kernel
   fresh -- same engine stats on baseline and XMem machines.
2. A parallel sweep returns bit-identical results to a serial one, in
   the same order.
3. The disk cache never replays a bad entry: corruption and stale
   recordings are detected and regenerated.
"""

import os
import pickle

import pytest

import repro.sim.runner as runner_mod
from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess, PackedTrace, Work, XMemOp
from repro.sim import (
    SimPoint,
    TraceCache,
    TraceRecording,
    UC2Point,
    build_baseline,
    build_xmem,
    get_recording,
    jobs_from_env,
    record_trace,
    run_parallel,
    run_point,
    run_uc2_point,
    scaled_config,
    sweep,
    uc2_sweep,
)
from repro.sim.runner import (
    SetupRecorder,
    StaleRecordingError,
    apply_setup,
    trace_key,
)
from repro.workloads.polybench import KERNELS

N = 24
TILE = 12


@pytest.fixture(autouse=True)
def clean_memo():
    """Each test starts with an empty in-process recording memo."""
    runner_mod._MEMO.clear()
    yield
    runner_mod._MEMO.clear()


@pytest.fixture
def disk_cache(tmp_path):
    return TraceCache(root=tmp_path / "traces")


def fresh_stats(kernel_name, with_xmem):
    """Reference run: build the trace live, no recording involved."""
    cfg = scaled_config(32)
    kernel = KERNELS[kernel_name]
    if with_xmem:
        handle = build_xmem(cfg)
        return handle.run(kernel.build_trace(N, TILE, lib=handle.xmemlib))
    handle = build_baseline(cfg)
    return handle.run(kernel.build_trace(N, TILE))


# ---------------------------------------------------------------------------
# Record / replay correctness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel", ["gemm", "jacobi2d"])
def test_replay_matches_fresh_generation(kernel, disk_cache):
    point = SimPoint(kernel=kernel, n=N, tile=TILE)
    result = run_point(point, cache=disk_cache)
    assert result.runs["baseline"].stats == fresh_stats(kernel, False)
    assert result.runs["xmem"].stats == fresh_stats(kernel, True)


@pytest.mark.parametrize("kernel", ["gemm", "jacobi2d"])
def test_disk_cache_hit_replays_identically(kernel, disk_cache):
    point = SimPoint(kernel=kernel, n=N, tile=TILE)
    first = run_point(point, cache=disk_cache)
    assert disk_cache.misses == 1 and disk_cache.hits == 0

    # Drop the in-process memo so the second run *must* hit the disk.
    runner_mod._MEMO.clear()
    second = run_point(point, cache=disk_cache)
    assert disk_cache.hits == 1
    for system in point.systems:
        assert (second.runs[system].stats
                == first.runs[system].stats)


def test_setup_recorder_logs_and_replays():
    recorder = SetupRecorder()
    events = list(KERNELS["gemm"].build_trace(N, TILE, lib=recorder))
    assert recorder.log, "gemm instruments atoms at trace-build time"
    assert any(isinstance(ev, XMemOp) for ev in events)

    from repro.core.xmemlib import XMemLib
    apply_setup(XMemLib(), recorder.log)  # IDs must match -> no raise


def test_stale_setup_log_raises():
    from repro.core.xmemlib import XMemLib
    recorder = SetupRecorder()
    list(KERNELS["gemm"].build_trace(N, TILE, lib=recorder))
    # Claim an atom call returned a different ID than it will now.
    method, args, kwargs, result = recorder.log[0]
    stale = [(method, args, kwargs, 9999)] + recorder.log[1:]
    with pytest.raises(StaleRecordingError):
        apply_setup(XMemLib(), stale)


def test_payload_roundtrip():
    recording = record_trace("gemm", N, TILE)
    clone = TraceRecording.from_payload(recording.to_payload())
    assert clone.packed == recording.packed
    assert clone.events == recording.events
    assert clone.setup == recording.setup
    assert (clone.kernel, clone.n, clone.tile) == ("gemm", N, TILE)


def test_payload_stores_raw_column_bytes():
    recording = record_trace("gemm", N, TILE)
    payload = recording.to_payload()
    assert payload["vaddr"] == recording.packed.vaddr.tobytes()
    assert payload["meta"] == recording.packed.meta.tobytes()
    assert payload["events"] == len(recording.packed)
    # The side-table is plain data (no event objects in the payload).
    for idx, method, args in payload["xmem"]:
        assert isinstance(idx, int) and isinstance(method, str)


def test_payload_version_mismatch_is_stale():
    payload = record_trace("gemm", N, TILE).to_payload()
    payload["version"] = -1
    with pytest.raises(StaleRecordingError):
        TraceRecording.from_payload(payload)


def test_payload_itemsize_mismatch_is_stale():
    payload = record_trace("gemm", N, TILE).to_payload()
    payload["itemsize"] = 4
    with pytest.raises(StaleRecordingError):
        TraceRecording.from_payload(payload)


def test_payload_column_length_mismatch_is_stale():
    payload = record_trace("gemm", N, TILE).to_payload()
    payload["meta"] = payload["meta"][:-8]
    with pytest.raises(StaleRecordingError):
        TraceRecording.from_payload(payload)


def test_packed_recording_roundtrips_through_disk(disk_cache):
    """store -> load preserves the packed columns bit-for-bit."""
    recording = record_trace("gemm", N, TILE)
    key = trace_key("gemm", N, TILE, True)
    disk_cache.store(key, recording)
    loaded = disk_cache.load(key)
    assert loaded is not None
    assert loaded.packed == recording.packed
    from repro.core.xmemlib import XMemLib
    replayed = loaded.replay(XMemLib())
    assert isinstance(replayed, PackedTrace)
    assert replayed == recording.packed


# ---------------------------------------------------------------------------
# Disk cache integrity
# ---------------------------------------------------------------------------

def test_corrupted_cache_entry_detected_and_regenerated(disk_cache):
    point = SimPoint(kernel="gemm", n=N, tile=TILE)
    reference = run_point(point, cache=disk_cache)

    # Flip bytes in the middle of the stored blob.
    key = trace_key("gemm", N, TILE, True)
    path = disk_cache._path(key)
    blob = bytearray(path.read_bytes())
    mid = len(blob) // 2
    blob[mid] ^= 0xFF
    blob[mid + 1] ^= 0xFF
    path.write_bytes(bytes(blob))

    runner_mod._MEMO.clear()
    misses_before = disk_cache.misses
    assert disk_cache.load(key) is None, "corruption must read as a miss"
    assert disk_cache.misses == misses_before + 1
    assert not path.exists(), "corrupt entry must be purged"

    # End to end: the corrupt entry regenerates and results still match.
    path.write_bytes(bytes(blob))
    runner_mod._MEMO.clear()
    again = run_point(point, cache=disk_cache)
    assert again.runs["xmem"].stats == reference.runs["xmem"].stats
    assert path.exists(), "regenerated entry must be stored back"


def test_truncated_cache_entry_detected(disk_cache):
    point = SimPoint(kernel="gemm", n=N, tile=TILE)
    run_point(point, cache=disk_cache)
    key = trace_key("gemm", N, TILE, True)
    path = disk_cache._path(key)
    path.write_bytes(path.read_bytes()[:40])
    runner_mod._MEMO.clear()
    assert disk_cache.load(key) is None
    assert not path.exists()


def test_wrong_key_entry_detected(disk_cache):
    """An entry renamed to another key's filename must not replay."""
    run_point(SimPoint(kernel="gemm", n=N, tile=TILE), cache=disk_cache)
    src = disk_cache._path(trace_key("gemm", N, TILE, True))
    dst = disk_cache._path(trace_key("jacobi2d", N, TILE, True))
    os.replace(src, dst)
    runner_mod._MEMO.clear()
    assert disk_cache.load(trace_key("jacobi2d", N, TILE, True)) is None


def test_stale_recording_regenerates_in_run_point(disk_cache):
    """A cached setup log with wrong atom IDs regenerates transparently."""
    point = SimPoint(kernel="gemm", n=N, tile=TILE)
    reference = run_point(point, cache=disk_cache)

    key = trace_key("gemm", N, TILE, True)
    recording = disk_cache.load(key)
    method, args, kwargs, _ = recording.setup[0]
    recording.setup[0] = (method, args, kwargs, 9999)
    disk_cache.store(key, recording)

    runner_mod._MEMO.clear()
    again = run_point(point, cache=disk_cache)
    assert again.runs["xmem"].stats == reference.runs["xmem"].stats
    # The refreshed entry must now replay cleanly.
    runner_mod._MEMO.clear()
    healed = disk_cache.load(key)
    from repro.core.xmemlib import XMemLib
    apply_setup(XMemLib(), healed.setup)


def test_cache_disabled_by_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    cache = TraceCache()
    assert not cache.enabled
    assert cache.load("whatever") is None
    cache.store("whatever", record_trace("gemm", N, TILE))  # no-op

    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "alt"))
    cache = TraceCache()
    assert cache.root == tmp_path / "alt"


# ---------------------------------------------------------------------------
# Parallel fan-out determinism
# ---------------------------------------------------------------------------

def sweep_points():
    return [
        SimPoint(kernel="gemm", n=N, tile=t) for t in (6, 12, 24)
    ] + [
        SimPoint(kernel="jacobi2d", n=N, tile=t) for t in (6, 24)
    ]


def test_parallel_sweep_matches_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    points = sweep_points()
    serial = sweep(points, jobs=1)
    runner_mod._MEMO.clear()
    parallel = sweep(points, jobs=2)
    assert len(serial) == len(parallel) == len(points)
    for s, p, point in zip(serial, parallel, points):
        assert s.point == p.point == point
        for system in point.systems:
            assert s.runs[system].stats == p.runs[system].stats
            assert (s.runs[system].llc_miss_rate
                    == p.runs[system].llc_miss_rate)
            assert s.runs[system].dram_reads == p.runs[system].dram_reads


def test_uc2_parallel_matches_serial(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    points = [UC2Point(workload="lbm", accesses=2000),
              UC2Point(workload="mcf", accesses=2000)]
    serial = uc2_sweep(points, jobs=1)
    parallel = uc2_sweep(points, jobs=2)
    for s, p in zip(serial, parallel):
        for system in ("baseline", "xmem", "ideal"):
            assert s[system].cycles == p[system].cycles
            assert (s[system].record.dram_row_hit_rate
                    == p[system].record.dram_row_hit_rate)


def test_run_parallel_preserves_order():
    out = run_parallel(_negate, list(range(20)), jobs=4)
    assert out == [-i for i in range(20)]


def _negate(x):
    return -x


class _PoolBomb:
    """A ProcessPoolExecutor stand-in that fails on construction."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("serial path must not build a pool")


def test_serial_paths_never_build_a_pool(monkeypatch):
    """jobs=1 -- and a single item at any job count -- skip the
    executor entirely (no fork, full tracebacks)."""
    monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", _PoolBomb)
    assert run_parallel(_negate, [1, 2, 3], jobs=1) == [-1, -2, -3]
    assert run_parallel(_negate, [7], jobs=8) == [-7]
    assert run_parallel(_negate, [], jobs=8) == []
    with pytest.raises(AssertionError):
        run_parallel(_negate, [1, 2], jobs=2)


def test_serial_sweep_bit_identical_to_pool(tmp_path, monkeypatch):
    """The no-pool bypass must not change a single counter vs the
    pool path -- asserted over full registry snapshots."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    points = [SimPoint(kernel="gemm", n=N, tile=t) for t in (6, 12)]
    serial = sweep(points, jobs=1, collect_stats=True)
    runner_mod._MEMO.clear()
    pooled = sweep(points, jobs=2, collect_stats=True)
    from repro.sim.stats import diff_stats
    for s, p in zip(serial, pooled):
        assert s.runs.keys() == p.runs.keys()
        for system in s.runs:
            assert s.runs[system].stats == p.runs[system].stats
            assert diff_stats(s.stats[system], p.stats[system]) == []


# ---------------------------------------------------------------------------
# Concurrent purge tolerance
# ---------------------------------------------------------------------------

def test_purge_tolerates_missing_file(disk_cache):
    """Two workers racing to purge the same stale entry: the loser's
    unlink targets a vanished file and must not raise."""
    run_point(SimPoint(kernel="gemm", n=N, tile=TILE), cache=disk_cache)
    key = trace_key("gemm", N, TILE, True)
    path = disk_cache._path(key)

    real_unlink = type(path).unlink

    def racing_unlink(self, missing_ok=False):
        # The other worker wins the race between the corruption check
        # and our unlink.
        if self.exists():
            real_unlink(self)
        return real_unlink(self, missing_ok=missing_ok)

    # Corrupt the entry, then simulate the race during the purge.
    path.write_bytes(b"garbage")
    runner_mod._MEMO.clear()
    import unittest.mock
    with unittest.mock.patch.object(type(path), "unlink", racing_unlink):
        assert disk_cache.load(key) is None  # no FileNotFoundError
    assert not path.exists()
    # _purge is also directly safe on a path that never existed.
    TraceCache._purge(disk_cache._path("no-such-key"))


def test_trace_cache_stat_group(disk_cache):
    run_point(SimPoint(kernel="gemm", n=N, tile=TILE), cache=disk_cache)
    counters = disk_cache.counters()
    assert counters == {"hits": 0, "misses": 1, "enabled": 1}
    assert [p for p, _ in disk_cache.stat_groups()] == ["trace_cache"]


# ---------------------------------------------------------------------------
# Collecting sweeps
# ---------------------------------------------------------------------------

def test_collecting_sweep_documents(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    points = [SimPoint(kernel="gemm", n=N, tile=t) for t in (6, 12)]
    results = sweep(points, jobs=1, collect_stats=True)
    for res in results:
        assert res.manifest is not None
        assert set(res.stats) == set(res.point.systems)
        assert res.manifest["point"]["tile"] == res.point.tile
    from repro.sim.runner import write_point_documents
    paths = write_point_documents(tmp_path / "docs", results)
    assert [p.name for p in paths] == ["000_gemm_n24_t6.json",
                                       "001_gemm_n24_t12.json"]


def test_uc2_collecting_snapshot(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
    res = run_uc2_point(UC2Point(workload="lbm", accesses=2000,
                                 collect_stats=True))
    for system in ("baseline", "xmem", "ideal"):
        assert res[system].stats is not None
        assert "dram" in res[system].stats
    plain = run_uc2_point(UC2Point(workload="lbm", accesses=2000))
    assert plain["xmem"].stats is None
    assert plain["xmem"].cycles == res["xmem"].cycles


# ---------------------------------------------------------------------------
# Knobs and validation
# ---------------------------------------------------------------------------

def test_jobs_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert jobs_from_env() == 3
    monkeypatch.setenv("REPRO_JOBS", "")
    assert jobs_from_env(default=2) == 2
    assert jobs_from_env() >= 1
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ConfigurationError):
        jobs_from_env()
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ConfigurationError):
        jobs_from_env()


def test_unknown_kernel_and_system_rejected():
    with pytest.raises(ConfigurationError):
        record_trace("nope", N, TILE)
    with pytest.raises(ConfigurationError):
        run_point(SimPoint(kernel="gemm", n=N, tile=TILE,
                           systems=("warp-drive",)),
                  cache=TraceCache(root=None))
    with pytest.raises(ConfigurationError):
        run_uc2_point(UC2Point(workload="nope"))


def test_simpoint_config_applies_knobs():
    cfg = SimPoint(kernel="gemm", n=N, tile=TILE, scale=32,
                   llc_bytes=16384, bandwidth=0.5).config()
    assert cfg.llc_bytes == 16384
    base = scaled_config(32)
    assert cfg.llc_bytes != base.llc_bytes or base.llc_bytes == 16384


def test_points_pickle():
    for point in (SimPoint(kernel="gemm", n=N, tile=TILE),
                  UC2Point(workload="lbm", accesses=100)):
        assert pickle.loads(pickle.dumps(point)) == point


def test_event_hashes_are_value_based():
    assert hash(MemAccess(64, False, 1)) == hash(MemAccess(64, False, 1))
    assert hash(Work(3)) == hash(Work(3))
    assert hash(XMemOp("atom_map", 1, 2)) == hash(XMemOp("atom_map",
                                                         1, 2))
    assert MemAccess(64, False, 1) != Work(3)
    assert hash(MemAccess(64, False, 1)) != hash(MemAccess(65, False, 1))
