"""Tests for configuration and full-system composition."""

import pytest

from repro.core.attributes import PatternType
from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess, XMemOp
from repro.sim.config import scaled_config, table3_config
from repro.sim.stats import (
    RunRecord,
    amean,
    format_table,
    geomean,
    slowdown,
    speedup,
)
from repro.sim.system import build_baseline, build_xmem, build_xmem_pref


class TestConfig:
    def test_table3_values(self):
        cfg = table3_config()
        assert cfg.cpu.ghz == 3.6
        assert cfg.cpu.issue_width == 4
        l1, l2, l3 = cfg.levels
        assert (l1.size_bytes, l1.ways, l1.latency) == (32 * 1024, 8, 4)
        assert (l2.size_bytes, l2.policy) == (128 * 1024, "drrip")
        assert (l3.size_bytes, l3.ways, l3.latency, l3.policy) == \
            (1024 * 1024, 16, 27, "drrip")
        assert cfg.prefetcher.streams == 16
        assert cfg.dram_geometry.channels == 2
        assert cfg.dram_geometry.banks_per_rank == 8

    def test_scaled_preserves_ratios(self):
        cfg = scaled_config(8)
        base = table3_config()
        for lvl, ref in zip(cfg.levels, base.levels):
            assert lvl.size_bytes == ref.size_bytes // 8
            assert lvl.ways == ref.ways
            assert lvl.latency == ref.latency

    def test_scaled_bad_factor(self):
        with pytest.raises(ConfigurationError):
            scaled_config(0)

    def test_with_llc(self):
        cfg = table3_config().with_llc(2 * 1024 * 1024)
        assert cfg.llc_bytes == 2 * 1024 * 1024
        assert cfg.levels[0].size_bytes == 32 * 1024  # untouched

    def test_with_bandwidth(self):
        cfg = table3_config().with_bandwidth(0.5)
        assert cfg.timing().t_burst == pytest.approx(
            table3_config().timing().t_burst * 2
        )


def stream_trace(lines, passes=2, work=2):
    for _ in range(passes):
        for i in range(lines):
            yield MemAccess(i * 64, False, work=work)


class TestBuilders:
    def test_baseline_has_no_xmem(self):
        h = build_baseline(scaled_config(8))
        assert h.xmemlib is None
        assert h.memory.xmem_prefetcher is None
        assert h.memory.stride_prefetcher is not None

    def test_xmem_has_controller_installed(self):
        h = build_xmem(scaled_config(8))
        assert h.controller is not None
        assert h.memory.hierarchy.pin_predicate == h.controller.pin_predicate

    def test_xmem_pref_has_no_pinning(self):
        h = build_xmem_pref(scaled_config(8))
        assert h.controller is not None
        # Pin predicate NOT installed: the default pins nothing.
        assert not h.memory.hierarchy.pin_predicate(0)

    def test_baseline_strips_xmem_ops(self):
        h = build_baseline(scaled_config(8))
        stats = h.run([XMemOp("atom_activate", 0), MemAccess(0)])
        # The op is dropped before the engine sees it.
        assert stats.xmem_instructions == 0
        assert stats.mem_accesses == 1

    def test_run_accumulates_stats(self):
        h = build_baseline(scaled_config(8))
        stats = h.run(stream_trace(64))
        assert stats.cycles > 0
        assert h.llc.stats.accesses > 0
        assert h.dram.stats.reads > 0


class TestEndToEndUseCase1:
    def test_pinning_beats_baseline_on_thrash(self):
        cfg = scaled_config(8)
        lines = 2 * cfg.llc_bytes // 64  # WS 2x the LLC

        base = build_baseline(cfg)
        b = base.run(stream_trace(lines, passes=4))

        xmem = build_xmem(cfg)
        atom = xmem.xmemlib.create_atom(
            "ws", pattern=PatternType.REGULAR, stride_bytes=64, reuse=200
        )
        def xtrace():
            yield XMemOp("atom_map", atom, 0, lines * 64)
            yield XMemOp("atom_activate", atom)
            yield from stream_trace(lines, passes=4)
        x = xmem.run(xtrace())

        assert x.cycles < b.cycles * 0.9
        assert xmem.dram.stats.reads < base.dram.stats.reads

    def test_fitting_working_set_no_harm(self):
        cfg = scaled_config(8)
        lines = cfg.llc_bytes // (4 * 64)  # WS fits easily

        base = build_baseline(cfg)
        b = base.run(stream_trace(lines, passes=6))

        xmem = build_xmem(cfg)
        atom = xmem.xmemlib.create_atom(
            "ws", pattern=PatternType.REGULAR, stride_bytes=64, reuse=200
        )
        def xtrace():
            yield XMemOp("atom_map", atom, 0, lines * 64)
            yield XMemOp("atom_activate", atom)
            yield from stream_trace(lines, passes=6)
        x = xmem.run(xtrace())
        # Within 10% of baseline when there is nothing to fix.
        assert x.cycles <= b.cycles * 1.1

    def test_prefetch_timeliness_charged(self):
        # Under severe bandwidth starvation, prefetches arrive late and
        # demand hits on them must wait: cycles grow superlinearly.
        cfg = scaled_config(8)
        fast = build_baseline(cfg)
        slow = build_baseline(cfg.with_bandwidth(0.1))
        lines = 2 * cfg.llc_bytes // 64
        f = fast.run(stream_trace(lines, passes=2))
        s = slow.run(stream_trace(lines, passes=2))
        assert s.cycles > f.cycles * 1.5


class TestStatsHelpers:
    def test_speedup_slowdown(self):
        assert speedup(200, 100) == 2.0
        assert slowdown(100, 150) == 1.5
        # Degenerate cycle counts are measurement bugs, surfaced as
        # explicit errors instead of an inf that geomean propagated.
        with pytest.raises(ValueError):
            speedup(1, 0)
        with pytest.raises(ValueError):
            speedup(1, -3)
        with pytest.raises(ValueError):
            slowdown(0, 100)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_amean(self):
        assert amean([1, 2, 3]) == 2.0
        assert amean([]) == 0.0

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]],
                            title="T")
        assert "T" in text
        assert "2.500" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_run_record_from_handle(self):
        h = build_baseline(scaled_config(8))
        stats = h.run(stream_trace(32))
        rec = RunRecord.from_handle("stream", h, stats, tile=4)
        assert rec.workload == "stream"
        assert rec.system == "baseline"
        assert rec.cycles == stats.cycles
        assert rec.params == {"tile": 4}
