"""The analytical estimator tier: exactness domain and error bounds.

Three layers of pinning:

* **L1 is exact.**  The L1 stack-distance automaton reproduces the
  machine's LRU L1 hit/miss split event for event, on every
  :mod:`repro.testing.generators` family.
* **Miss-count error is bounded.**  On baseline-shaped machines
  (LRU/RRIP levels, stride prefetcher, no pins, no XMem) the estimated
  ``misses_to_memory`` stays within the documented 2% relative bound
  of the exact engine -- both on generator families and on a suite
  catalog subset including the historically worst workload (milc).
* **The tier is non-invasive.**  Estimation moves no machine counter
  and only sets ``engine.last_stats``.
"""

import pytest

from repro.cpu.engine import TraceEngine
from repro.cpu.trace import PackedTrace
from repro.dram.system import DramSystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.prefetch import MultiStridePrefetcher
from repro.sim import usecase2 as uc2
from repro.sim.analytical import AnalyticalEstimate, estimate, estimate_packed
from repro.sim.config import scaled_config
from repro.sim.system import MemorySystem, build_baseline
from repro.sim.usecase2 import usecase2_config
from repro.testing.generators import GenConfig, generate_trace
from repro.workloads.suite import BY_NAME
from repro.xos.loader import OperatingSystem

#: The documented relative miss-count bound (docs/simulator.md).
BOUND = 0.02

#: Generator families: strided, pointer-chase, hot-set, and the mix.
FAMILIES = {
    "strided": GenConfig(seed=11, length=3000, mix=(1.0, 0.0, 0.0)),
    "chase": GenConfig(seed=12, length=3000, mix=(0.0, 1.0, 0.0)),
    "hotset": GenConfig(seed=13, length=3000, mix=(0.0, 0.0, 1.0)),
    "mixed": GenConfig(seed=14, length=3000, regions=6,
                       write_frac=0.5, region_bytes=1 << 17),
}


def _twin_run(cfg_gen):
    """(exact stats, exact handle, estimate) for one generated trace."""
    events, _ = generate_trace(cfg_gen)
    cfg = scaled_config(32)
    h = build_baseline(cfg)
    exact = h.run(list(events))
    est = estimate(h.engine, PackedTrace.from_events(events))
    return exact, h, est


class TestGeneratorFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_l1_is_exact(self, family):
        exact_stats, h, est = _twin_run(FAMILIES[family])
        l1 = h.memory.hierarchy.levels[0].stats
        assert est.level_hits[0] == l1.hits
        assert est.level_misses[0] == l1.misses
        assert est.stats.mem_accesses == exact_stats.mem_accesses
        assert est.stats.instructions == exact_stats.instructions

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_miss_count_within_bound(self, family):
        exact_stats, _, est = _twin_run(FAMILIES[family])
        got = est.stats.misses_to_memory
        want = exact_stats.misses_to_memory
        assert abs(got - want) <= max(BOUND * want, 1), (
            f"{family}: est={got} exact={want}")

    @pytest.mark.parametrize("seed", range(5))
    def test_miss_count_within_bound_random_shapes(self, seed):
        cfg_gen = GenConfig(seed=100 + seed, length=2000,
                            regions=2 + seed % 4,
                            write_frac=0.1 * seed,
                            region_bytes=1 << (14 + seed % 3))
        exact_stats, _, est = _twin_run(cfg_gen)
        got = est.stats.misses_to_memory
        want = exact_stats.misses_to_memory
        assert abs(got - want) <= max(BOUND * want, 1)


def _suite_machine(name):
    """One Use-Case-2 baseline machine + event stream for a workload."""
    wl = BY_NAME[name]
    cfg = usecase2_config()
    osys = OperatingSystem(cfg.dram_geometry, mapping=uc2.XMEM_MAPPING,
                           allocator="randomized", seed=17)
    proc = osys.create_process()
    bases = wl.instantiate(proc)
    hierarchy = CacheHierarchy(cfg.levels, cfg.line_bytes)
    dram = DramSystem(geometry=cfg.dram_geometry, timing=cfg.timing(),
                      mapping=uc2.XMEM_MAPPING)
    stride = MultiStridePrefetcher(streams=cfg.prefetcher.streams,
                                   degree=cfg.prefetcher.degree,
                                   line_bytes=cfg.line_bytes)
    memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride)
    engine = TraceEngine(memory, xmemlib=None, translate=proc.translate,
                         issue_width=cfg.cpu.issue_width,
                         window=cfg.cpu.window)
    events = []
    for i, ev in enumerate(wl.trace(bases)):
        if i >= 12_000:
            break
        events.append(ev)
    return engine, events


class TestSuiteBound:
    #: Stream-, table-, graph- and mixed-shaped representatives; milc
    #: is the workload that historically sat furthest from the bound.
    SUBSET = ("milc", "mcf", "lbm", "kmeans", "spmv")

    @pytest.mark.parametrize("name", SUBSET)
    def test_miss_count_within_bound(self, name):
        engine, events = _suite_machine(name)
        exact = engine.run(list(events))
        est = estimate(engine, PackedTrace.from_events(events))
        got = est.stats.misses_to_memory
        want = exact.misses_to_memory
        assert want > 0
        assert abs(got - want) <= max(BOUND * want, 1), (
            f"{name}: est={got} exact={want}")


class TestTierContract:
    def test_machine_untouched_and_last_stats_set(self):
        events, _ = generate_trace(GenConfig(seed=5, length=500))
        h = build_baseline(scaled_config(32))
        stats = estimate_packed(h.engine, PackedTrace.from_events(events))
        assert h.engine.last_stats is stats
        assert h.memory.hierarchy.llc.stats.accesses == 0
        assert h.dram.stats.reads == 0
        assert stats.mem_accesses > 0
        assert stats.cycles > 0

    def test_accepts_object_streams(self):
        events, _ = generate_trace(GenConfig(seed=6, length=300))
        h = build_baseline(scaled_config(32))
        est_obj = estimate_packed(h.engine, list(events))
        h2 = build_baseline(scaled_config(32))
        est_pk = estimate_packed(h2.engine, PackedTrace.from_events(events))
        assert est_obj == est_pk

    def test_estimate_returns_detail(self):
        events, _ = generate_trace(GenConfig(seed=7, length=300))
        h = build_baseline(scaled_config(32))
        est = estimate(h.engine, PackedTrace.from_events(events))
        assert isinstance(est, AnalyticalEstimate)
        assert len(est.level_hits) == len(h.memory.hierarchy.levels)
        assert est.stats.misses_to_memory == est.level_misses[-1]
