"""Focused tests for the MemorySystem wrapper (write queue, prefetch
timeliness, stats)."""

import pytest

from repro.dram.mapping import DramGeometry
from repro.dram.system import DramSystem
from repro.mem.hierarchy import CacheHierarchy, LevelConfig
from repro.mem.prefetch import MultiStridePrefetcher
from repro.sim.system import MemorySystem


def make_memory(llc_bytes=4096, stride_pf=False, **dram_kw):
    hierarchy = CacheHierarchy(
        [LevelConfig("LLC", llc_bytes, 4, latency=10, policy="lru")]
    )
    dram_kw.setdefault("geometry", DramGeometry(capacity_bytes=1 << 24))
    dram = DramSystem(**dram_kw)
    pf = MultiStridePrefetcher(degree=2) if stride_pf else None
    return MemorySystem(hierarchy, dram, stride_prefetcher=pf)


class TestWriteQueue:
    def test_writebacks_buffered_until_threshold(self):
        mem = make_memory(llc_bytes=1024)
        mem.write_drain_threshold = 8
        # Dirty lines that conflict-evict: 1KB/4way/64B = 4 sets.
        now = 0.0
        for i in range(12):
            mem.access(i * 4 * 64, True, now)  # same set, dirty fills
            now += 500.0
        # Evictions started after the 4th fill: 8 writebacks buffered
        # at that point trigger one drain.
        assert mem.stats.writebacks >= 8
        assert mem.dram.stats.writes in (0, 8)
        assert len(mem._write_buffer) == mem.stats.writebacks - \
            mem.dram.stats.writes

    def test_drain_writes_flushes_and_sorts(self):
        mem = make_memory(llc_bytes=1024)
        mem.write_drain_threshold = 1000  # never auto-drain
        now = 0.0
        for i in range(12):
            mem.access(i * 4 * 64, True, now)
            now += 500.0
        buffered = len(mem._write_buffer)
        assert buffered > 0
        mem.drain_writes(now)
        assert mem._write_buffer == []
        assert mem.dram.stats.writes == buffered

    def test_drain_empty_noop(self):
        mem = make_memory()
        mem.drain_writes(0.0)
        assert mem.dram.stats.writes == 0

    def test_sorted_drain_gets_row_hits(self):
        mem = make_memory(llc_bytes=1024)
        mem.write_drain_threshold = 1000
        # Fill dirty lines spread across two rows of one bank, in an
        # interleaved order that would ping-pong if unsorted.
        g = mem.dram.geometry
        row_stride = g.row_bytes * g.banks_per_rank * g.channels
        lines = []
        for i in range(8):
            lines.append((i % 2) * row_stride + (i // 2) * 4 * 64)
        now = 0.0
        for line in lines:
            mem.access(line, True, now)
            now += 300.0
        # Evict everything by filling other sets' tags.
        for i in range(64):
            mem.access((1 << 20) + i * 64, False, now)
            now += 300.0
        conflicts_before = mem.dram.stats.row_conflicts
        mem.drain_writes(now)
        drain_conflicts = mem.dram.stats.row_conflicts - conflicts_before
        # Sorted drain: each row opened at most once for the writes.
        assert drain_conflicts <= 4


class TestPrefetchTimeliness:
    def test_demand_hit_waits_for_late_prefetch(self):
        mem = make_memory(stride_pf=True)
        now = 0.0
        # Train the stride prefetcher: sequential misses.
        for i in range(4):
            completes, _ = mem.access(i * 64, False, now)
            now = completes
        # The prefetcher has now fetched ahead; an immediate demand for
        # the prefetched line completes no earlier than its DRAM time.
        if mem._prefetch_ready:
            line, ready = next(iter(mem._prefetch_ready.items()))
            completes, to_mem = mem.access(line, False, now)
            assert not to_mem          # it's an LLC hit...
            assert completes >= min(ready, completes)  # ...but gated

    def test_demand_miss_clears_inflight_entry(self):
        mem = make_memory(stride_pf=True)
        mem._prefetch_ready[0] = 1e12
        completes, to_mem = mem.access(0, False, 0.0)
        assert to_mem
        assert 0 not in mem._prefetch_ready
        assert completes < 1e12


class TestStats:
    def test_demand_counters(self):
        mem = make_memory()
        mem.access(0, False, 0.0)
        mem.access(4096, True, 0.0)
        mem.access(0, False, 10_000.0)  # hit
        assert mem.stats.demand_reads == 1
        assert mem.stats.demand_writes == 1

    def test_prefetch_reads_counted(self):
        mem = make_memory(stride_pf=True)
        now = 0.0
        for i in range(6):
            completes, _ = mem.access(i * 64, False, now)
            now = completes
        assert mem.stats.prefetch_reads > 0
