"""The packed co-run interleaver vs. the legacy per-event oracle.

The heap-scheduled batched engine (:meth:`CorunSystem.run_packed`)
must be bit-identical to the legacy ``run_events`` loop -- CoreStats
and the full stats snapshot -- on real suite-catalog tenant mixes,
baseline and XMem.  Plus unit coverage of the global pin controller's
budget edge cases.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import PatternType
from repro.core.xmemlib import XMemLib
from repro.mem.cache import Cache
from repro.sim.config import scaled_config
from repro.sim.corun import CorunSystem, MultiProcessController
from repro.sim.runner import record_suite_trace

PAIRS = [
    ("mcf", "lbm"),
    ("omnetpp", "sc"),
    ("libquantum", "GemsFDTD"),
]


def run_pair(names, mode, engine, accesses=2500, footprint_div=256):
    """One mix through the selected engine (None = ``run`` dispatch)."""
    cfg = scaled_config(32)
    xmem = (0,) if mode == "xmem" else ()
    system = CorunSystem(cfg, len(names), xmem_cores=xmem)
    traces = []
    for core, name in zip(system.cores, names):
        recording = record_suite_trace(name, accesses, footprint_div)
        if core.xmemlib is not None:
            traces.append(recording.replay(core.xmemlib))
        else:
            traces.append(recording.packed.without_xmem())
    run = {"object": system.run_events,
           "packed": system.run_packed,
           None: system.run}[engine]
    return run(traces), system.stats_snapshot()


@pytest.mark.parametrize("mode", ["baseline", "xmem"])
@pytest.mark.parametrize("names", PAIRS,
                         ids=["+".join(p) for p in PAIRS])
def test_packed_bit_identical_to_legacy(names, mode):
    stats_obj, snap_obj = run_pair(names, mode, "object")
    stats_packed, snap_packed = run_pair(names, mode, "packed")
    for legacy, packed in zip(stats_obj, stats_packed):
        assert (packed.cycles, packed.instructions,
                packed.mem_accesses, packed.llc_misses) == (
            legacy.cycles, legacy.instructions,
            legacy.mem_accesses, legacy.llc_misses)
    assert snap_obj == snap_packed


def test_run_dispatch_honours_engine_tier(monkeypatch):
    """All-packed traces take the batched engine by default; the
    oracle stays selectable via REPRO_ENGINE -- and both agree."""
    stats_default, _ = run_pair(PAIRS[0], "xmem", None)
    monkeypatch.setenv("REPRO_ENGINE", "object")
    stats_object, _ = run_pair(PAIRS[0], "xmem", None)
    assert stats_default == stats_object


# -- MultiProcessController.refresh edge cases --------------------------


def make_lib(name: str, atom_bytes: int, reuse: int) -> XMemLib:
    """One library with a single mapped+active atom of ``atom_bytes``."""
    lib = XMemLib()
    atom = lib.create_atom(
        name, pattern=PatternType.REGULAR, stride_bytes=64, reuse=reuse)
    lib.atom_map(atom, 0, atom_bytes)
    lib.atom_activate(atom)
    return lib


def test_refresh_budget_exhaustion():
    """Once the top-reuse atom spends the budget, ``refresh`` breaks
    out and every lower-reuse atom stays unpinned."""
    llc = Cache("llc", 32 * 1024, 8, 64, policy="lru")
    ctl = MultiProcessController(llc)          # 75% budget = 24 KB
    budget = int(llc.size_bytes * ctl.pin_fraction)
    ctl.register(0, make_lib("hot", budget, reuse=255))
    offset = 1 << 40
    ctl.register(offset, make_lib("cold", budget, reuse=100))
    summary = ctl.pin_summary()
    assert summary["pinned_bytes"] == budget
    assert summary["apps_pinned"] == 1
    assert ctl.pin_predicate(0)
    assert not ctl.pin_predicate(offset)


def test_refresh_skips_sub_chunk_takes():
    """A take clamped below one AAM chunk is skipped outright, even
    with budget left: pinning fragments below the mapping granularity
    would be unaccountable."""
    lib = make_lib("tiny", 4096, reuse=255)
    chunk = lib.process.amu.aam.config.chunk_bytes
    llc = Cache("llc", 64 * chunk, 8, 64, policy="lru")
    ctl = MultiProcessController(
        llc, pin_fraction=(chunk // 2) / llc.size_bytes)
    ctl.register(0, lib)
    summary = ctl.pin_summary()
    assert summary["pinned_bytes"] == 0
    assert summary["spans"] == 0
    assert not ctl.pin_predicate(0)
