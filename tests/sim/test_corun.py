"""Tests for multi-core co-running (repro.sim.corun)."""

import pytest

from repro.core.attributes import PatternType
from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess, Work, XMemOp
from repro.sim.config import scaled_config
from repro.sim.corun import APP_SPACE, CorunSystem, MultiProcessController
from repro.mem.cache import Cache


def stream_trace(lines, passes=2, work=2, base=0):
    for _ in range(passes):
        for i in range(lines):
            yield MemAccess(base + i * 64, False, work=work)


class TestBasics:
    def test_core_count_validation(self):
        with pytest.raises(ConfigurationError):
            CorunSystem(scaled_config(16), 0)

    def test_trace_count_validation(self):
        sys_ = CorunSystem(scaled_config(16), 2)
        with pytest.raises(ConfigurationError):
            sys_.run([iter([])])

    def test_single_core_runs(self):
        sys_ = CorunSystem(scaled_config(16), 1)
        (stats,) = sys_.run([stream_trace(64)])
        assert stats.mem_accesses == 128
        assert stats.cycles > 0

    def test_two_cores_progress_together(self):
        sys_ = CorunSystem(scaled_config(16), 2)
        s = sys_.run([stream_trace(64), stream_trace(64)])
        assert all(st.mem_accesses == 128 for st in s)

    def test_work_and_xmem_events(self):
        sys_ = CorunSystem(scaled_config(16), 1, xmem_cores=(0,))
        lib = sys_.cores[0].xmemlib
        atom = lib.create_atom("t", reuse=10)
        trace = [XMemOp("atom_map", atom, 0, 4096),
                 XMemOp("atom_activate", atom),
                 Work(100), MemAccess(0)]
        (stats,) = sys_.run([iter(trace)])
        assert stats.instructions == 103
        assert lib.process.atoms[atom].is_active

    def test_junk_event(self):
        sys_ = CorunSystem(scaled_config(16), 1)
        with pytest.raises(TypeError):
            sys_.run([iter([object()])])


class TestSharedLLCContention:
    def test_corunner_slows_victim(self):
        cfg = scaled_config(16)
        llc_lines = cfg.llc_bytes // 64
        victim = lambda: stream_trace(llc_lines // 2, passes=6)
        hog = lambda: stream_trace(8 * llc_lines, passes=1,
                                   base=1 << 30)
        alone = CorunSystem(cfg, 1)
        (solo,) = alone.run([victim()])
        shared = CorunSystem(cfg, 2)
        co, _ = shared.run([victim(), hog()])
        assert co.cycles > solo.cycles

    def test_disjoint_address_spaces(self):
        sys_ = CorunSystem(scaled_config(16), 2)
        sys_.run([stream_trace(16), stream_trace(16)])
        # Both cores touched "address 0" but in different app spaces:
        # the shared LLC holds both copies.
        assert sys_.llc.probe(0)
        assert sys_.llc.probe(APP_SPACE)


class TestGlobalPinning:
    def make_xmem_corun(self):
        cfg = scaled_config(16)
        sys_ = CorunSystem(cfg, 2, xmem_cores=(0,))
        lib = sys_.cores[0].xmemlib
        atom = lib.create_atom("tile", pattern=PatternType.REGULAR,
                               stride_bytes=64, reuse=255)
        return cfg, sys_, lib, atom

    def test_controller_pins_across_apps(self):
        cfg, sys_, lib, atom = self.make_xmem_corun()
        lib.atom_map(atom, 0, 8 * 1024)
        lib.atom_activate(atom)
        assert sys_.controller.pin_predicate(0)        # app 0 space
        assert not sys_.controller.pin_predicate(APP_SPACE)

    def test_budget_shared_globally(self):
        cfg = scaled_config(16)
        sys_ = CorunSystem(cfg, 2, xmem_cores=(0, 1))
        budget = int(cfg.llc_bytes * 0.75)
        # App 0's atom has higher reuse and soaks the whole budget.
        lib0 = sys_.cores[0].xmemlib
        a0 = lib0.create_atom("big", pattern=PatternType.REGULAR,
                              stride_bytes=64, reuse=255)
        lib0.atom_map(a0, 0, 2 * budget)
        lib0.atom_activate(a0)
        lib1 = sys_.cores[1].xmemlib
        a1 = lib1.create_atom("late", pattern=PatternType.REGULAR,
                              stride_bytes=64, reuse=10)
        lib1.atom_map(a1, 0, 4096)
        lib1.atom_activate(a1)
        assert sys_.controller.pin_predicate(0)
        # App 1 lost the duel: nothing pinned in its space.
        assert not sys_.controller.pin_predicate(APP_SPACE)

    def test_xmem_protects_victim_from_hog(self):
        """The Section 5.1 story: co-running changes available cache;
        XMem keeps the victim's working set resident anyway."""
        cfg = scaled_config(16)
        llc_lines = cfg.llc_bytes // 64
        ws_lines = llc_lines // 2

        def victim_trace():
            yield from stream_trace(ws_lines, passes=8)

        def victim_trace_xmem(atom):
            yield XMemOp("atom_map", atom, 0, ws_lines * 64)
            yield XMemOp("atom_activate", atom)
            yield from stream_trace(ws_lines, passes=8)

        def hog():
            return stream_trace(6 * llc_lines, passes=1, base=1 << 30,
                                work=1)

        plain = CorunSystem(cfg, 2)
        co_plain, _ = plain.run([victim_trace(), hog()])

        prot = CorunSystem(cfg, 2, xmem_cores=(0,))
        lib = prot.cores[0].xmemlib
        atom = lib.create_atom("ws", pattern=PatternType.REGULAR,
                               stride_bytes=64, reuse=255)
        co_prot, _ = prot.run([victim_trace_xmem(atom), hog()])

        assert co_prot.llc_misses < co_plain.llc_misses
        assert co_prot.cycles < co_plain.cycles * 1.02
