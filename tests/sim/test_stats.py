"""Tests for the unified stats layer: registry, histograms, snapshot
diff/merge, run manifests, and the edge-case guards in the stats
helpers."""

import json

import pytest

from repro.core.stats import Histogram, iter_stat_groups, stat_values
from repro.cpu.trace import MemAccess
from repro.sim.config import scaled_config
from repro.sim.runner import (
    SimPoint,
    TraceCache,
    point_document,
    run_point,
    write_point_documents,
)
from repro.sim.stats import (
    PhaseTimer,
    StatsRegistry,
    collect_repro_env,
    diff_stats,
    flatten_stats,
    format_table,
    merge_stats,
    peak_rss_kb,
)
from repro.sim.system import build_baseline, build_xmem


def stream_trace(lines, passes=1, line_bytes=64):
    for _ in range(passes):
        for i in range(lines):
            yield MemAccess(vaddr=i * line_bytes)


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for v in (1, 2, 3, 100):
            h.record(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == 106
        assert d["mean"] == pytest.approx(26.5)
        assert d["le_1"] == 1
        assert d["le_2"] == 1
        assert d["le_4"] == 1
        assert d["le_128"] == 1

    def test_empty_mean_guarded(self):
        assert Histogram().mean == 0.0
        assert Histogram().to_dict()["mean"] == 0.0

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.record(2)
        b.record(2)
        b.record(500)
        a.merge(b)
        d = a.to_dict()
        assert d["count"] == 3
        assert d["le_2"] == 2
        assert d["le_512"] == 1


# ---------------------------------------------------------------------------
# StatGroup protocol + registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_register_and_query(self):
        from repro.mem.cache import CacheStats
        reg = StatsRegistry()
        stats = CacheStats()
        reg.register("cache.l3", stats)
        stats.accesses = 4
        stats.hits = 3
        stats.misses = 1
        # Live reference: mutation after registration is observed.
        assert reg.query("cache.l3.hits") == 3
        assert reg.query("cache.l3.miss_rate") == pytest.approx(0.25)

    def test_collision_and_empty_path_rejected(self):
        reg = StatsRegistry()
        reg.register("a", {"x": 1})
        with pytest.raises(ValueError):
            reg.register("a", {"y": 2})
        with pytest.raises(ValueError):
            reg.register("", {"y": 2})

    def test_callable_group_is_lazy(self):
        calls = []

        def group():
            calls.append(1)
            return {"n": len(calls)}

        reg = StatsRegistry()
        reg.register("lazy", group)
        assert not calls
        assert reg.query("lazy.n") == 1
        assert reg.snapshot()["lazy"]["n"] == 2

    def test_provider_registration(self):
        class Provider:
            def stat_groups(self):
                yield "inner", {"v": 7}

        reg = StatsRegistry()
        reg.register_provider("outer", Provider())
        assert reg.paths() == ["outer.inner"]
        assert reg.query("outer.inner.v") == 7

    def test_bare_group_provider(self):
        paths = [p for p, _ in iter_stat_groups({"v": 1}, "bare")]
        assert paths == ["bare"]

    def test_system_tree(self):
        h = build_xmem(scaled_config(8))
        h.run(stream_trace(256, passes=2))
        reg = h.stats_registry()
        snap = reg.snapshot()
        for path in ("engine", "engine.mshr", "memory", "cache.l1",
                     "cache.l3", "dram", "dram.banks",
                     "prefetch.stride", "prefetch.xmem", "amu",
                     "amu.alb"):
            assert path in snap, path
        # Registry reads agree with the component counters.
        assert reg.query("cache.l3.miss_rate") == h.llc.stats.miss_rate
        assert reg.query("dram.reads") == h.dram.stats.reads
        # The whole snapshot is JSON-serializable.
        json.dumps(snap)

    def test_longest_prefix_wins(self):
        h = build_baseline(scaled_config(8))
        h.run(stream_trace(64))
        reg = h.stats_registry()
        # "dram.banks" must not be shadowed by group "dram".
        banks = reg.query("dram.banks.banks_touched")
        assert banks >= 1


# ---------------------------------------------------------------------------
# stat_values coverage
# ---------------------------------------------------------------------------

def test_stat_values_histogram_and_properties():
    from repro.dram.system import DramStats
    s = DramStats()
    s.reads = 2
    s.read_latency_sum = 10.0
    s.read_latency_hist.record(5)
    vals = stat_values(s)
    assert vals["reads"] == 2
    assert vals["avg_read_latency"] == 5.0
    assert vals["read_latency_hist"]["count"] == 1


# ---------------------------------------------------------------------------
# flatten / diff / merge
# ---------------------------------------------------------------------------

class TestDiffMerge:
    def test_flatten_histogram_keys(self):
        snap = {"dram": {"reads": 2,
                         "hist": {"count": 2, "le_4": 2}}}
        flat = flatten_stats(snap)
        assert flat["dram.reads"] == 2
        assert flat["dram.hist.le_4"] == 2

    def test_diff_identical_is_empty(self):
        snap = {"a": {"x": 1, "h": {"count": 1}}}
        assert diff_stats(snap, snap) == []

    def test_diff_reports_deltas_and_missing(self):
        a = {"g": {"x": 1}}
        b = {"g": {"x": 3, "y": 2}}
        deltas = diff_stats(a, b)
        assert ("g.x", 1, 3) in deltas
        assert ("g.y", 0, 2) in deltas

    def test_diff_tolerance(self):
        a = {"g": {"x": 1.0}}
        b = {"g": {"x": 1.05}}
        assert diff_stats(a, b, tolerance=0.1) == []
        assert diff_stats(a, b) != []

    def test_merge_counters_and_histograms(self):
        a = {"g": {"n": 1,
                   "h": {"count": 1, "sum": 4, "mean": 4.0, "le_4": 1}}}
        b = {"g": {"n": 2,
                   "h": {"count": 1, "sum": 8, "mean": 8.0, "le_8": 1}}}
        m = merge_stats([a, b])
        assert m["g"]["n"] == 3
        assert m["g"]["h"]["count"] == 2
        assert m["g"]["h"]["mean"] == pytest.approx(6.0)
        assert m["g"]["h"]["le_4"] == 1
        assert m["g"]["h"]["le_8"] == 1


# ---------------------------------------------------------------------------
# Derived-rate guards (empty machine / empty trace)
# ---------------------------------------------------------------------------

class TestZeroDivisionGuards:
    def test_fresh_system_snapshot_is_all_finite(self):
        # An untouched machine must snapshot without ZeroDivisionError
        # and with every derived rate at 0.0.
        h = build_xmem(scaled_config(8))
        snap = h.stats_snapshot()
        assert snap["cache.l3"]["miss_rate"] == 0.0
        assert snap["cache.l3"]["prefetch_accuracy"] == 0.0
        assert snap["cache.l3"]["writeback_rate"] == 0.0
        assert snap["dram"]["avg_read_latency"] == 0.0
        assert snap["dram"]["avg_write_latency"] == 0.0
        assert snap["dram"]["row_hit_rate"] == 0.0
        assert snap["dram.banks"]["row_hit_rate"] == 0.0
        assert snap["engine.mshr"]["full_stall_rate"] == 0.0
        assert snap["prefetch.xmem"]["pat_hit_rate"] == 0.0
        assert snap["amu"]["chunks_per_map"] == 0.0
        assert snap["amu.alb"]["hit_rate"] == 0.0

    def test_empty_trace_run(self):
        h = build_baseline(scaled_config(8))
        stats = h.run(iter(()))
        assert stats.instructions == 0
        snap = h.stats_snapshot()
        assert snap["dram"]["avg_read_latency"] == 0.0
        assert snap["cache.l3"]["miss_rate"] == 0.0

    def test_scheduler_reorder_rate_guarded(self):
        from repro.dram.scheduler import SchedulerStats
        assert SchedulerStats().reorder_rate == 0.0


# ---------------------------------------------------------------------------
# format_table ragged rows
# ---------------------------------------------------------------------------

class TestFormatTableRagged:
    def test_short_row_padded(self):
        text = format_table(["a", "b", "c"], [[1, 2, 3], ["x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # Every rendered line has the same width.
        assert len({len(line) for line in lines}) == 1

    def test_long_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

class TestManifest:
    def test_phase_timer(self):
        t = PhaseTimer()
        t.start("a")
        t.stop()
        t.start("b")
        t.start("c")  # implicitly closes b
        t.stop()
        assert set(t.phases) == {"a", "b", "c"}
        for phase in t.phases.values():
            assert phase["wall_s"] >= 0.0
            assert phase["peak_rss_kb"] > 0

    def test_peak_rss_positive(self):
        assert peak_rss_kb() > 0

    def test_collect_repro_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "x")
        monkeypatch.setenv("NOT_REPRO", "y")
        env = collect_repro_env()
        assert env["REPRO_TEST_KNOB"] == "x"
        assert "NOT_REPRO" not in env

    def test_point_document_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        point = SimPoint(kernel="gemm", n=24, tile=12)
        res = run_point(point, cache=cache, collect=True)
        doc = point_document(res)
        m = doc["manifest"]
        assert m["schema"] == 1
        assert m["point"]["kernel"] == "gemm"
        assert m["config"]["line_bytes"] == 64
        assert m["trace"]["source"] in ("memo", "disk", "generated",
                                        "regenerated")
        assert m["trace"]["format_version"] >= 2
        assert "trace" in m["phases"]
        assert "run:baseline" in m["phases"]
        assert set(doc["stats"]) == {"baseline", "xmem"}
        paths = write_point_documents(tmp_path / "docs", [res])
        loaded = json.loads(paths[0].read_text())
        assert loaded == json.loads(json.dumps(doc))

    def test_plain_run_has_no_manifest(self, tmp_path):
        res = run_point(SimPoint(kernel="gemm", n=24, tile=12),
                        cache=TraceCache(tmp_path / "cache"))
        assert res.stats is None and res.manifest is None
        with pytest.raises(Exception):
            point_document(res)

    def test_collect_does_not_change_measurement(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        point = SimPoint(kernel="gemm", n=24, tile=12)
        plain = run_point(point, cache=cache)
        collected = run_point(point, cache=cache, collect=True)
        for system in point.systems:
            assert (plain.runs[system].cycles
                    == collected.runs[system].cycles)
            assert (plain.runs[system].llc_miss_rate
                    == collected.runs[system].llc_miss_rate)


# ---------------------------------------------------------------------------
# RunRecord through the registry
# ---------------------------------------------------------------------------

def test_run_record_reads_registry():
    from repro.sim.stats import RunRecord
    h = build_baseline(scaled_config(8))
    stats = h.run(stream_trace(512, passes=2))
    rec = RunRecord.from_handle("stream", h, stats)
    assert rec.llc_miss_rate == h.llc.stats.miss_rate
    assert rec.dram_read_latency == h.dram.stats.avg_read_latency
    assert rec.dram_row_hit_rate == h.dram.stats.row_hit_rate
