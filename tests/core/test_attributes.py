"""Tests for atom attributes (repro.core.attributes)."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.core.attributes import (
    AccessPattern,
    AccessProperties,
    AtomAttributes,
    DataLocality,
    DataProperty,
    DataType,
    DataValueProperties,
    PatternType,
    RWChar,
    make_attributes,
)
from repro.core.errors import InvalidAttributeError


class TestDataType:
    def test_sizes(self):
        assert DataType.INT32.size_bytes == 4
        assert DataType.FLOAT64.size_bytes == 8
        assert DataType.CHAR8.size_bytes == 1
        assert DataType.UNKNOWN.size_bytes == 0


class TestDataValueProperties:
    def test_default_has_nothing(self):
        d = DataValueProperties()
        for p in DataProperty:
            if p is not DataProperty.NONE:
                assert not d.has(p)

    def test_bitset_composition(self):
        d = DataValueProperties(
            properties=DataProperty.SPARSE | DataProperty.POINTER
        )
        assert d.has(DataProperty.SPARSE)
        assert d.has(DataProperty.POINTER)
        assert not d.has(DataProperty.INDEX)


class TestAccessPattern:
    def test_regular_requires_stride(self):
        with pytest.raises(InvalidAttributeError):
            AccessPattern(pattern=PatternType.REGULAR)

    def test_regular_rejects_zero_stride(self):
        with pytest.raises(InvalidAttributeError):
            AccessPattern(pattern=PatternType.REGULAR, stride_bytes=0)

    def test_non_regular_rejects_stride(self):
        with pytest.raises(InvalidAttributeError):
            AccessPattern(pattern=PatternType.IRREGULAR, stride_bytes=64)

    def test_prefetchability(self):
        assert AccessPattern(PatternType.REGULAR, 64).is_prefetchable
        assert AccessPattern(PatternType.IRREGULAR).is_prefetchable
        assert not AccessPattern(PatternType.NON_DET).is_prefetchable

    def test_negative_stride_allowed(self):
        # Backward streaming is a valid regular pattern.
        p = AccessPattern(PatternType.REGULAR, -64)
        assert p.stride_bytes == -64


class TestEightBitQuantities:
    @pytest.mark.parametrize("value", [-1, 256, 1000])
    def test_reuse_out_of_range(self, value):
        with pytest.raises(InvalidAttributeError):
            DataLocality(reuse=value)

    @pytest.mark.parametrize("value", [-1, 256])
    def test_intensity_out_of_range(self, value):
        with pytest.raises(InvalidAttributeError):
            AccessProperties(access_intensity=value)

    @pytest.mark.parametrize("value", [0, 1, 128, 255])
    def test_boundaries_accepted(self, value):
        assert DataLocality(reuse=value).reuse == value
        assert AccessProperties(access_intensity=value).access_intensity == value

    def test_bool_rejected(self):
        with pytest.raises(InvalidAttributeError):
            DataLocality(reuse=True)

    def test_float_rejected(self):
        with pytest.raises(InvalidAttributeError):
            DataLocality(reuse=1.5)


class TestAtomAttributes:
    def test_frozen(self):
        attrs = make_attributes("x")
        with pytest.raises(dataclasses.FrozenInstanceError):
            attrs.name = "y"

    def test_nested_frozen(self):
        attrs = make_attributes("x", reuse=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            attrs.locality.reuse = 20

    def test_shortcuts(self):
        attrs = make_attributes(
            "t", pattern=PatternType.REGULAR, stride_bytes=8,
            access_intensity=7, reuse=9,
        )
        assert attrs.reuse == 9
        assert attrs.access_intensity == 7
        assert attrs.pattern.stride_bytes == 8

    def test_describe_mentions_key_fields(self):
        attrs = make_attributes(
            "mytile", data_type=DataType.FLOAT64,
            properties=(DataProperty.SPARSE,),
            pattern=PatternType.REGULAR, stride_bytes=8,
            rw=RWChar.READ_ONLY, access_intensity=3, reuse=200,
        )
        text = attrs.describe()
        assert "mytile" in text
        assert "float64" in text
        assert "SPARSE" in text
        assert "read_only" in text
        assert "reuse=200" in text

    def test_equality_and_hash(self):
        a = make_attributes("t", reuse=5)
        b = make_attributes("t", reuse=5)
        c = make_attributes("t", reuse=6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_encoded_size_is_paper_value(self):
        # Section 4.4: attributes of each atom need 19 bytes.
        assert AtomAttributes.ENCODED_SIZE_BYTES == 19


@given(
    reuse=st.integers(0, 255),
    intensity=st.integers(0, 255),
    stride=st.integers(-4096, 4096).filter(lambda s: s != 0),
)
def test_make_attributes_roundtrips_values(reuse, intensity, stride):
    attrs = make_attributes(
        "p", pattern=PatternType.REGULAR, stride_bytes=stride,
        access_intensity=intensity, reuse=reuse,
    )
    assert attrs.reuse == reuse
    assert attrs.access_intensity == intensity
    assert attrs.pattern.stride_bytes == stride
