"""Tests for the AMU and ALB (repro.core.amu)."""

import pytest

from repro.core.amu import AtomLookasideBuffer, AtomManagementUnit
from repro.core.errors import TranslationError
from repro.core.isa import (
    atom_activate,
    atom_deactivate,
    atom_map,
    atom_unmap,
)
from repro.core.ranges import AddressRange


def mapped_amu(atom_id=1, start=0, size=4096):
    amu = AtomManagementUnit()
    amu.execute(atom_map(atom_id, (AddressRange.from_size(start, size),)))
    amu.execute(atom_activate(atom_id))
    return amu


class TestInstructionInterpretation:
    def test_map_then_lookup(self):
        amu = mapped_amu(atom_id=3)
        assert amu.lookup(0) == 3
        assert amu.lookup(4095) == 3
        assert amu.lookup(4096) is None

    def test_inactive_atom_invisible(self):
        amu = AtomManagementUnit()
        amu.execute(atom_map(1, (AddressRange(0, 4096),)))
        # Not activated: lookups return None even though mapped.
        assert amu.lookup(0) is None
        assert amu.lookup_raw(0) == 1

    def test_deactivate_hides_atom(self):
        amu = mapped_amu(atom_id=1)
        amu.execute(atom_deactivate(1))
        assert amu.lookup(0) is None

    def test_unmap_removes(self):
        amu = mapped_amu(atom_id=1)
        amu.execute(atom_unmap(1, (AddressRange(0, 4096),)))
        assert amu.lookup(0) is None

    def test_multi_range_map(self):
        amu = AtomManagementUnit()
        ranges = (AddressRange(0, 512), AddressRange(8192, 8704))
        amu.execute(atom_map(2, ranges))
        amu.execute(atom_activate(2))
        assert amu.lookup(0) == 2
        assert amu.lookup(8192) == 2
        assert amu.lookup(4096) is None

    def test_stats_counted(self):
        amu = mapped_amu()
        amu.execute(atom_deactivate(1))
        s = amu.stats
        assert s.map_instructions == 1
        assert s.activate_instructions == 1
        assert s.deactivate_instructions == 1
        assert s.xmem_instructions == 3

    def test_non_instruction_rejected(self):
        amu = AtomManagementUnit()
        with pytest.raises(TypeError):
            amu.execute("ATOM_MAP")

    def test_translation_hook_applied(self):
        # VA 0x10000 translates to PA 0x2000 in this fake MMU.
        def translate(rng):
            return (AddressRange(rng.start - 0xE000, rng.end - 0xE000),)

        amu = AtomManagementUnit(translate=translate)
        amu.execute(atom_map(1, (AddressRange(0x10000, 0x11000),)))
        amu.execute(atom_activate(1))
        assert amu.lookup(0x2000) == 1
        assert amu.lookup(0x10000) is None

    def test_untranslatable_range_is_skipped_not_fatal(self):
        # Hint-only: an unmapped VA range contributes nothing but the
        # instruction still completes.
        def translate(rng):
            raise TranslationError(rng.start)

        amu = AtomManagementUnit(translate=translate)
        amu.execute(atom_map(1, (AddressRange(0, 4096),)))
        assert amu.stats.map_instructions == 1
        assert amu.aam.mapped_chunk_count == 0


class TestALB:
    def test_miss_then_hit(self):
        alb = AtomLookasideBuffer(entries=4)
        assert alb.lookup(0) is None
        alb.fill(0, (1,) * 8)
        assert alb.lookup(0) == (1,) * 8
        assert alb.stats.misses == 1
        assert alb.stats.hits == 1

    def test_lru_eviction(self):
        alb = AtomLookasideBuffer(entries=2)
        alb.fill(0, (0,))
        alb.fill(1, (1,))
        alb.lookup(0)          # page 0 now MRU
        alb.fill(2, (2,))      # evicts page 1
        assert alb.lookup(1) is None
        assert alb.lookup(0) == (0,)
        assert alb.lookup(2) == (2,)

    def test_flush(self):
        alb = AtomLookasideBuffer(entries=4)
        alb.fill(0, (0,))
        alb.flush()
        assert len(alb) == 0
        assert alb.lookup(0) is None

    def test_hit_rate(self):
        alb = AtomLookasideBuffer(entries=4)
        alb.lookup(0)
        alb.fill(0, (0,))
        for _ in range(9):
            alb.lookup(0)
        assert alb.stats.hit_rate == pytest.approx(0.9)

    def test_refill_same_page_updates(self):
        alb = AtomLookasideBuffer(entries=2)
        alb.fill(0, (1,))
        alb.fill(0, (2,))
        assert alb.lookup(0) == (2,)
        assert len(alb) == 1


class TestAMULookupPath:
    def test_alb_caches_lookups(self):
        amu = mapped_amu()
        amu.lookup(0)
        amu.lookup(64)
        amu.lookup(128)
        assert amu.alb.stats.misses == 1
        assert amu.alb.stats.hits == 2

    def test_map_invalidates_alb(self):
        amu = mapped_amu(atom_id=1)
        assert amu.lookup(0) == 1           # fills ALB
        amu.execute(atom_map(2, (AddressRange(0, 512),)))
        amu.execute(atom_activate(2))
        # ALB must not serve the stale atom 1 entry.
        assert amu.lookup(0) == 2

    def test_unmap_invalidates_alb(self):
        amu = mapped_amu(atom_id=1)
        assert amu.lookup(0) == 1
        amu.execute(atom_unmap(1, (AddressRange(0, 4096),)))
        assert amu.lookup(0) is None

    def test_context_switch_flushes_alb_and_swaps_ast(self):
        amu = mapped_amu(atom_id=1)
        assert amu.lookup(0) == 1
        empty_ast = bytes(len(amu.ast.snapshot()))
        amu.context_switch(empty_ast)
        assert len(amu.alb) == 0
        # Incoming process has no active atoms.
        assert amu.lookup(0) is None

    def test_lookup_counts(self):
        amu = mapped_amu()
        for i in range(5):
            amu.lookup(i * 64)
        assert amu.stats.lookups == 5
