"""Tests for the Section 4.4 overhead model."""

import pytest

from repro.core.aam import AAMConfig
from repro.core.overheads import (
    context_switch_overhead_fraction,
    hardware_area_fraction,
    instruction_overhead,
    storage_overheads,
)


class TestStorage:
    def test_8gb_system_matches_paper(self):
        ov = storage_overheads(8 << 30)
        assert ov.aam_bytes == pytest.approx(16 << 20, rel=0.05)
        assert ov.aam_fraction == pytest.approx(0.002, rel=0.05)
        assert ov.ast_bytes == 32
        # GAT: 19 B/atom, a few KB at 256 atoms.
        assert ov.gat_bytes == 256 * 19
        assert ov.gat_bytes < 8 * 1024

    def test_compact_config(self):
        ov = storage_overheads(
            8 << 30, AAMConfig(chunk_bytes=1024, atom_id_bits=6)
        )
        assert ov.aam_fraction == pytest.approx(0.00073, rel=0.05)

    def test_total(self):
        ov = storage_overheads(1 << 30)
        assert ov.total_bytes == ov.aam_bytes + ov.ast_bytes + ov.gat_bytes


class TestInstructionOverhead:
    def test_zero_for_no_instructions(self):
        assert instruction_overhead(0, 0) == 0.0
        assert instruction_overhead(5, 0) == 0.0

    def test_fraction(self):
        assert instruction_overhead(14, 100_000) == pytest.approx(0.00014)

    def test_paper_band(self):
        # The paper's average: 0.014% additional instructions.
        assert instruction_overhead(140, 1_000_000) == pytest.approx(1.4e-4)


class TestAreaAndContextSwitch:
    def test_area_fraction_near_paper(self):
        # 0.144 mm^2 on a Xeon die: ~0.03%.
        assert hardware_area_fraction() == pytest.approx(0.0003, rel=0.1)

    def test_context_switch_overhead_small(self):
        frac = context_switch_overhead_fraction()
        # ~700 ns of flush on a ~4 us switch: well under 25%.
        assert 0 < frac < 0.25
