"""Tests for the atom segment (repro.core.segment)."""

import pytest

from repro.core.attributes import (
    DataProperty,
    DataType,
    PatternType,
    RWChar,
    make_attributes,
)
from repro.core.gat import GlobalAttributeTable
from repro.core.segment import (
    AtomSegment,
    SegmentFormatError,
    decode_attributes,
    encode_attributes,
    load_segment,
    summarize,
)


def sample_attrs():
    return make_attributes(
        "tile", data_type=DataType.FLOAT64,
        properties=(DataProperty.SPARSE,),
        pattern=PatternType.REGULAR, stride_bytes=8,
        rw=RWChar.READ_ONLY, access_intensity=12, reuse=250,
    )


class TestEncodeDecode:
    def test_roundtrip(self):
        attrs = sample_attrs()
        assert decode_attributes(encode_attributes(attrs)) == attrs

    def test_roundtrip_defaults(self):
        attrs = make_attributes("")
        assert decode_attributes(encode_attributes(attrs)) == attrs

    def test_unknown_fields_ignored(self):
        entry = encode_attributes(sample_attrs())
        entry["future_quantum_hint"] = {"qubits": 3}
        assert decode_attributes(entry) == sample_attrs()

    def test_missing_fields_use_defaults(self):
        attrs = decode_attributes({"name": "x"})
        assert attrs.name == "x"
        assert attrs.reuse == 0

    def test_corrupt_value_raises(self):
        entry = encode_attributes(sample_attrs())
        entry["reuse"] = 9999
        with pytest.raises(SegmentFormatError):
            decode_attributes(entry)

    def test_corrupt_enum_raises(self):
        entry = encode_attributes(sample_attrs())
        entry["pattern"] = "zigzag"
        with pytest.raises(SegmentFormatError):
            decode_attributes(entry)


class TestSummarize:
    def test_summarize_consecutive_ids(self):
        seg = summarize([(0, sample_attrs()), (1, make_attributes("b"))])
        assert seg.atom_count == 2
        assert seg.version == 1

    def test_non_consecutive_rejected(self):
        with pytest.raises(SegmentFormatError):
            summarize([(1, sample_attrs())])


class TestLoad:
    def test_load_fills_gat(self):
        seg = summarize([(0, sample_attrs()), (1, make_attributes("b"))])
        gat = GlobalAttributeTable()
        assert load_segment(seg, gat) == 2
        assert gat.lookup(0) == sample_attrs()
        assert gat.lookup(1).name == "b"

    def test_unknown_version_ignored(self):
        # "Older XMem architectures can simply ignore unknown formats."
        seg = AtomSegment(version=99, entries=[{"name": "x"}])
        gat = GlobalAttributeTable()
        assert load_segment(seg, gat) == 0
        assert len(gat) == 0

    def test_empty_segment(self):
        gat = GlobalAttributeTable()
        assert load_segment(AtomSegment(), gat) == 0
