"""Tests for the Atom Status Table and Global Attribute Table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ast_table import AtomStatusTable
from repro.core.attributes import make_attributes
from repro.core.errors import (
    AtomCapacityError,
    ConfigurationError,
    ImmutableAttributeError,
    UnknownAtomError,
)
from repro.core.gat import GlobalAttributeTable


class TestAtomStatusTable:
    def test_starts_all_inactive(self):
        ast = AtomStatusTable()
        assert ast.active_ids() == []
        assert not ast.is_active(0)

    def test_activate_deactivate(self):
        ast = AtomStatusTable()
        ast.activate(5)
        assert ast.is_active(5)
        assert ast.active_ids() == [5]
        ast.deactivate(5)
        assert not ast.is_active(5)

    def test_bit_independence(self):
        ast = AtomStatusTable()
        ast.activate(7)
        ast.activate(8)  # adjacent byte boundary
        ast.deactivate(7)
        assert not ast.is_active(7)
        assert ast.is_active(8)

    def test_out_of_range_raises(self):
        ast = AtomStatusTable(max_atoms=16)
        with pytest.raises(UnknownAtomError):
            ast.activate(16)
        with pytest.raises(UnknownAtomError):
            ast.is_active(-1)

    def test_storage_is_32_bytes_at_256_atoms(self):
        # Section 4.2: "the AST is only 32B per application".
        assert AtomStatusTable(256).storage_bytes == 32

    def test_snapshot_restore(self):
        ast = AtomStatusTable()
        ast.activate(3)
        ast.activate(250)
        snap = ast.snapshot()
        ast.clear()
        assert ast.active_ids() == []
        ast.restore(snap)
        assert ast.active_ids() == [3, 250]

    def test_restore_size_mismatch(self):
        ast = AtomStatusTable(256)
        with pytest.raises(ConfigurationError):
            ast.restore(b"\x00")

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            AtomStatusTable(0)

    @given(st.sets(st.integers(0, 255), max_size=40))
    def test_bitmap_matches_set_semantics(self, ids):
        ast = AtomStatusTable()
        for i in ids:
            ast.activate(i)
        assert ast.active_ids() == sorted(ids)


class TestGlobalAttributeTable:
    def test_install_lookup(self):
        gat = GlobalAttributeTable()
        attrs = make_attributes("x", reuse=3)
        gat.install(0, attrs)
        assert gat.lookup(0) == attrs
        assert 0 in gat
        assert len(gat) == 1

    def test_lookup_missing_raises(self):
        gat = GlobalAttributeTable()
        with pytest.raises(UnknownAtomError):
            gat.lookup(0)
        assert gat.get(0) is None

    def test_reinstall_identical_is_idempotent(self):
        gat = GlobalAttributeTable()
        attrs = make_attributes("x", reuse=3)
        gat.install(0, attrs)
        gat.install(0, make_attributes("x", reuse=3))
        assert len(gat) == 1

    def test_reinstall_different_rejected(self):
        gat = GlobalAttributeTable()
        gat.install(0, make_attributes("x", reuse=3))
        with pytest.raises(ImmutableAttributeError):
            gat.install(0, make_attributes("x", reuse=4))

    def test_capacity_enforced(self):
        gat = GlobalAttributeTable(max_atoms=4)
        with pytest.raises(AtomCapacityError):
            gat.install(4, make_attributes("x"))

    def test_iteration_sorted(self):
        gat = GlobalAttributeTable()
        gat.install(2, make_attributes("b"))
        gat.install(0, make_attributes("a"))
        assert [i for i, _ in gat] == [0, 2]

    def test_storage_bytes(self):
        # 19 B per atom slot (Section 4.4).
        assert GlobalAttributeTable(256).storage_bytes == 256 * 19
