"""Tests for the Atom abstraction (repro.core.atom)."""

from repro.core.atom import Atom, AtomState, describe_atom, resolve_overlap
from repro.core.attributes import make_attributes
from repro.core.ranges import AddressRange


def make_atom(atom_id=0, name="a", **kw):
    return Atom(atom_id, make_attributes(name, **kw))


class TestState:
    def test_starts_inactive(self):
        atom = make_atom()
        assert atom.state is AtomState.INACTIVE
        assert not atom.is_active

    def test_activate_deactivate(self):
        atom = make_atom()
        atom.activate()
        assert atom.is_active
        atom.deactivate()
        assert not atom.is_active

    def test_activation_idempotent(self):
        atom = make_atom()
        atom.activate()
        atom.activate()
        assert atom.is_active
        atom.deactivate()
        atom.deactivate()
        assert not atom.is_active

    def test_deactivation_preserves_mapping(self):
        atom = make_atom()
        atom.map_range(AddressRange(0, 100))
        atom.deactivate()
        assert atom.covers(50)
        assert atom.working_set_bytes == 100


class TestMapping:
    def test_map_and_cover(self):
        atom = make_atom()
        atom.map_range(AddressRange(0x1000, 0x2000))
        assert atom.covers(0x1000)
        assert atom.covers(0x1fff)
        assert not atom.covers(0x2000)

    def test_noncontiguous_mapping(self):
        atom = make_atom()
        atom.map_range(AddressRange(0, 100))
        atom.map_range(AddressRange(1000, 1100))
        assert atom.covers(50)
        assert atom.covers(1050)
        assert not atom.covers(500)
        assert atom.working_set_bytes == 200

    def test_unmap_range(self):
        atom = make_atom()
        atom.map_range(AddressRange(0, 100))
        atom.unmap_range(AddressRange(20, 40))
        assert atom.covers(10)
        assert not atom.covers(30)
        assert atom.covers(50)
        assert atom.working_set_bytes == 80

    def test_unmap_all(self):
        atom = make_atom()
        atom.map_range(AddressRange(0, 100))
        atom.map_range(AddressRange(200, 300))
        atom.unmap_all()
        assert atom.working_set_bytes == 0
        assert list(atom.iter_ranges()) == []

    def test_working_set_is_mapping_size(self):
        # Section 3.3: working set size is inferred from the mapping.
        atom = make_atom()
        atom.map_range(AddressRange.from_size(0, 64 * 1024))
        assert atom.working_set_bytes == 64 * 1024


class TestImmutability:
    def test_attributes_have_no_setters(self):
        atom = make_atom(reuse=5)
        # The Atom exposes attributes but (being a frozen dataclass) they
        # cannot be mutated; __slots__ also prevents new attributes.
        assert atom.reuse == 5
        try:
            atom.extra = 1
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Atom should use __slots__")


class TestMisc:
    def test_repr_and_describe(self):
        atom = make_atom(3, "weights", reuse=200)
        atom.map_range(AddressRange(0x1000, 0x3000))
        atom.activate()
        assert "weights" in repr(atom)
        desc = describe_atom(atom)
        assert "0x1000" in desc
        assert "reuse=200" in desc

    def test_resolve_overlap_latest_wins(self):
        assert resolve_overlap(None, 4) == 4
        assert resolve_overlap(2, 4) == 4
