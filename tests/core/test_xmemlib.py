"""Tests for XMemLib, the Table 2 application interface."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import AtomCapacityError, UnknownAtomError
from repro.core.attributes import PatternType
from repro.core.xmemlib import XMemLib, XMemProcess


def lib_with_tile(reuse=200, size=64 * 1024, start=0x100000):
    lib = XMemLib()
    atom = lib.create_atom(
        "tile", pattern=PatternType.REGULAR, stride_bytes=8, reuse=reuse
    )
    lib.atom_map(atom, start, size)
    lib.atom_activate(atom)
    return lib, atom


class TestCreate:
    def test_ids_consecutive_from_zero(self):
        lib = XMemLib()
        assert lib.create_atom("a") == 0
        assert lib.create_atom("b") == 1
        assert lib.create_atom("c") == 2

    def test_same_site_returns_same_id(self):
        # Table 2: "Multiple invocations of CreateAtom [at the same
        # static call site] always return the same Atom ID".
        lib = XMemLib()
        first = lib.create_atom("loop_tile", reuse=100)
        for _ in range(10):
            assert lib.create_atom("loop_tile", reuse=100) == first
        assert len(lib.process.atoms) == 1

    def test_different_attributes_make_new_atom(self):
        lib = XMemLib()
        a = lib.create_atom("x", reuse=1)
        b = lib.create_atom("x", reuse=2)
        assert a != b

    def test_capacity_exhaustion(self):
        lib = XMemLib(XMemProcess(max_atoms=2))
        lib.create_atom("a")
        lib.create_atom("b")
        with pytest.raises(AtomCapacityError):
            lib.create_atom("c")

    def test_create_installs_in_gat(self):
        lib = XMemLib()
        a = lib.create_atom("a", reuse=9)
        assert lib.process.gat.lookup(a).reuse == 9


class TestMapUnmap:
    def test_map_reaches_aam(self):
        lib, atom = lib_with_tile()
        assert lib.process.amu.lookup(0x100000) == atom

    def test_unmap_clears(self):
        lib, atom = lib_with_tile()
        lib.atom_unmap(atom, 0x100000, 64 * 1024)
        assert lib.process.amu.lookup(0x100000) is None
        assert lib.process.atoms[atom].working_set_bytes == 0

    def test_map_unknown_atom(self):
        lib = XMemLib()
        with pytest.raises(UnknownAtomError):
            lib.atom_map(5, 0, 4096)

    def test_map_2d_covers_rows_not_gaps(self):
        lib = XMemLib()
        atom = lib.create_atom("block")
        # 2 rows of 512B in a structure with 8192B rows.
        lib.atom_map_2d(atom, start=0, size_x=512, size_y=2, len_x=8192)
        lib.atom_activate(atom)
        a = lib.process.atoms[atom]
        assert a.covers(0)
        assert a.covers(8191 + 1)      # second row start
        assert not a.covers(512)       # gap between rows
        assert a.working_set_bytes == 1024

    def test_unmap_2d_inverse(self):
        lib = XMemLib()
        atom = lib.create_atom("block")
        lib.atom_map_2d(atom, 0, 512, 4, 8192)
        lib.atom_unmap_2d(atom, 0, 512, 4, 8192)
        assert lib.process.atoms[atom].working_set_bytes == 0

    def test_map_3d(self):
        lib = XMemLib()
        atom = lib.create_atom("brick")
        # 2 planes of 2 rows x 256B, rows of 1024B, 4 rows per plane.
        lib.atom_map_3d(atom, start=0, size_x=256, size_y=2, size_z=2,
                        len_x=1024, len_y=4)
        a = lib.process.atoms[atom]
        assert a.working_set_bytes == 256 * 2 * 2
        assert a.covers(0)
        assert a.covers(1024)          # row 1 of plane 0
        assert a.covers(4096)          # plane 1 base
        assert not a.covers(2048)      # untouched row

    def test_remap_moves_atom(self):
        # The Section 5.2 idiom: one atom slides across tiles.
        lib, atom = lib_with_tile(start=0x0, size=4096)
        lib.atom_remap(atom, 0x10000, 4096)
        a = lib.process.atoms[atom]
        assert not a.covers(0x0)
        assert a.covers(0x10000)
        assert lib.process.amu.lookup(0x10000) == atom
        assert lib.process.amu.lookup(0x0) is None


class TestActivation:
    def test_activation_gates_lookup(self):
        lib = XMemLib()
        atom = lib.create_atom("x")
        lib.atom_map(atom, 0, 4096)
        assert lib.process.atom_for_paddr(0) is None
        lib.atom_activate(atom)
        assert lib.process.atom_for_paddr(0) is lib.process.atoms[atom]
        lib.atom_deactivate(atom)
        assert lib.process.atom_for_paddr(0) is None

    def test_active_atoms_list(self):
        lib = XMemLib()
        a = lib.create_atom("a")
        b = lib.create_atom("b")
        lib.atom_activate(b)
        assert [x.atom_id for x in lib.process.active_atoms()] == [b]
        lib.atom_activate(a)
        assert [x.atom_id for x in lib.process.active_atoms()] == [a, b]


class TestSystemGlue:
    def test_instruction_count(self):
        lib, atom = lib_with_tile()          # 1 map + 1 activate
        lib.atom_deactivate(atom)
        assert lib.xmem_instruction_count == 3

    def test_compile_segment_roundtrip(self):
        lib = XMemLib()
        lib.create_atom("a", reuse=1)
        lib.create_atom("b", reuse=2)
        seg = lib.compile_segment()
        assert seg.atom_count == 2

    def test_retranslate_fills_pats(self):
        lib, atom = lib_with_tile(reuse=123)
        lib.process.retranslate()
        assert lib.process.pats["cache"].lookup(atom).reuse == 123

    def test_correctness_decoupling(self):
        """Dropping all XMem calls must not be observable functionally.

        The XMem system only ever *answers queries*; it holds no program
        data.  We assert the query interface degrades to 'no atom' and
        nothing else differs.
        """
        lib = XMemLib()
        assert lib.process.atom_for_paddr(0xDEAD) is None
        assert lib.process.active_atoms() == []


@given(st.integers(0, 2**30), st.integers(1, 2**20))
def test_map_activate_lookup_roundtrip(start, size):
    lib = XMemLib()
    atom = lib.create_atom("t")
    lib.atom_map(atom, start, size)
    lib.atom_activate(atom)
    assert lib.process.amu.lookup(start) == atom
    assert lib.process.amu.lookup(start + size - 1) == atom
