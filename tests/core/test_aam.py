"""Tests for the Atom Address Map (repro.core.aam)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.aam import AAMConfig, AtomAddressMap
from repro.core.errors import ConfigurationError
from repro.core.ranges import AddressRange


class TestAAMConfig:
    def test_defaults_match_paper(self):
        cfg = AAMConfig()
        assert cfg.chunk_bytes == 512
        assert cfg.atom_id_bits == 8
        assert cfg.chunks_per_page == 8

    def test_default_overhead_is_0_2_percent(self):
        # 8-bit atom ID per 512 B -> ~0.2% of physical memory.
        assert AAMConfig().storage_overhead_fraction() == pytest.approx(
            0.002, rel=0.05
        )

    def test_compact_overhead_is_0_07_percent(self):
        # Section 4.2: 6-bit IDs at 1 KB granularity -> 0.07%.
        cfg = AAMConfig(chunk_bytes=1024, atom_id_bits=6)
        assert cfg.storage_overhead_fraction() == pytest.approx(
            0.0007, rel=0.1
        )

    def test_storage_bytes_8gb(self):
        # Paper: ~16 MB on an 8 GB system.
        bytes_ = AAMConfig().storage_bytes(8 << 30)
        assert bytes_ == pytest.approx(16 << 20, rel=0.05)

    def test_rejects_non_power_of_two_chunks(self):
        with pytest.raises(ConfigurationError):
            AAMConfig(chunk_bytes=500)

    def test_rejects_chunk_larger_than_page_misaligned(self):
        with pytest.raises(ConfigurationError):
            AAMConfig(chunk_bytes=8192, page_bytes=4096)

    def test_rejects_bad_id_width(self):
        with pytest.raises(ConfigurationError):
            AAMConfig(atom_id_bits=0)
        with pytest.raises(ConfigurationError):
            AAMConfig(atom_id_bits=17)


class TestMapping:
    def test_lookup_unmapped_is_none(self):
        aam = AtomAddressMap()
        assert aam.lookup(0x1234) is None

    def test_map_range_covers_chunks(self):
        aam = AtomAddressMap()
        written = aam.map_range(AddressRange(0, 1024), atom_id=5)
        assert written == 2  # two 512B chunks
        assert aam.lookup(0) == 5
        assert aam.lookup(511) == 5
        assert aam.lookup(1023) == 5
        assert aam.lookup(1024) is None

    def test_chunk_granularity_approximation(self):
        # A range covering part of a chunk claims the whole chunk --
        # the paper's documented approximation.
        aam = AtomAddressMap()
        aam.map_range(AddressRange(100, 200), atom_id=1)
        assert aam.lookup(0) == 1
        assert aam.lookup(511) == 1

    def test_latest_mapping_wins(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 512), atom_id=1)
        aam.map_range(AddressRange(0, 512), atom_id=2)
        assert aam.lookup(0) == 2

    def test_unmap_only_own_chunks(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 512), atom_id=1)
        aam.map_range(AddressRange(0, 512), atom_id=2)
        # Late unmap from atom 1 must not clobber atom 2's mapping.
        aam.unmap_range(AddressRange(0, 512), atom_id=1)
        assert aam.lookup(0) == 2

    def test_unmap_unowned_noop(self):
        aam = AtomAddressMap()
        cleared = aam.unmap_range(AddressRange(0, 4096))
        assert cleared == 0

    def test_unmap_without_id_clears(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 512), atom_id=7)
        aam.unmap_range(AddressRange(0, 512))
        assert aam.lookup(0) is None

    def test_atom_id_must_fit_encoding(self):
        aam = AtomAddressMap(AAMConfig(atom_id_bits=6))
        with pytest.raises(ConfigurationError):
            aam.map_range(AddressRange(0, 512), atom_id=64)

    def test_lookup_page(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(512, 1024), atom_id=3)
        page0 = aam.lookup_page(0)
        assert len(page0) == 8
        assert page0[0] is None
        assert page0[1] == 3
        assert all(e is None for e in page0[2:])

    def test_footprint_bytes(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 2048), atom_id=1)
        aam.map_range(AddressRange(8192, 8192 + 512), atom_id=1)
        assert aam.footprint_bytes(1) == 2048 + 512
        assert aam.footprint_bytes(2) == 0

    def test_clear(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 4096), atom_id=1)
        aam.clear()
        assert aam.mapped_chunk_count == 0

    def test_mapped_chunks(self):
        aam = AtomAddressMap()
        aam.map_range(AddressRange(0, 1024), atom_id=1)
        aam.map_range(AddressRange(2048, 2560), atom_id=2)
        assert sorted(aam.mapped_chunks(1)) == [0, 1]
        assert sorted(aam.mapped_chunks(2)) == [4]


@given(
    base=st.integers(0, 1 << 20),
    size=st.integers(1, 1 << 16),
    atom_id=st.integers(0, 255),
)
def test_map_then_lookup_every_byte(base, size, atom_id):
    """Every byte inside a mapped range must resolve to the atom."""
    aam = AtomAddressMap()
    rng = AddressRange.from_size(base, size)
    aam.map_range(rng, atom_id)
    # Probe the boundaries and a middle point.
    for addr in {rng.start, rng.start + size // 2, rng.end - 1}:
        assert aam.lookup(addr) == atom_id


@given(
    base=st.integers(0, 1 << 20),
    size=st.integers(1, 1 << 16),
    atom_id=st.integers(0, 255),
)
def test_map_unmap_restores_empty(base, size, atom_id):
    aam = AtomAddressMap()
    rng = AddressRange.from_size(base, size)
    aam.map_range(rng, atom_id)
    aam.unmap_range(rng, atom_id)
    assert aam.mapped_chunk_count == 0
