"""Tests for the dynamic profiler (repro.core.profiler)."""

import random

import pytest

from repro.core.attributes import PatternType, RWChar
from repro.core.errors import ConfigurationError
from repro.core.profiler import AccessProfiler, RegionProfile
from repro.core.ranges import AddressRange
from repro.core.xmemlib import XMemLib
from repro.cpu.trace import MemAccess, Work


def named_profiler(*specs):
    return AccessProfiler(regions=[(n, r) for n, r in specs])


REGION_A = AddressRange(0, 1 << 20)
REGION_B = AddressRange(1 << 20, 2 << 20)


class TestPatternClassification:
    def test_sequential_stream_is_regular(self):
        p = named_profiler(("a", REGION_A))
        for i in range(500):
            p.observe(i * 8)
        (_, prof), = p.profiles()
        pattern, stride = prof.classify_pattern()
        assert pattern is PatternType.REGULAR
        assert stride == 8

    def test_strided_stream_detects_stride(self):
        p = named_profiler(("a", REGION_A))
        for i in range(500):
            p.observe(i * 256)
        (_, prof), = p.profiles()
        _, stride = prof.classify_pattern()
        assert stride == 256

    def test_negative_stride(self):
        p = named_profiler(("a", REGION_A))
        for i in range(500, 0, -1):
            p.observe(i * 64)
        (_, prof), = p.profiles()
        pattern, stride = prof.classify_pattern()
        assert pattern is PatternType.REGULAR
        assert stride == -64

    def test_repeated_shuffle_is_irregular(self):
        # A graph-like walk: random order, but the SAME order each pass.
        rng = random.Random(5)
        lines = [i * 64 for i in range(100)]
        rng.shuffle(lines)
        p = named_profiler(("g", REGION_A))
        for _pass in range(6):
            for addr in lines:
                p.observe(addr)
        (_, prof), = p.profiles()
        pattern, stride = prof.classify_pattern()
        assert pattern is PatternType.IRREGULAR
        assert stride is None

    def test_pure_random_is_non_det(self):
        rng = random.Random(9)
        p = named_profiler(("r", REGION_A))
        for _ in range(2000):
            p.observe(rng.randrange(1 << 20) // 64 * 64)
        (_, prof), = p.profiles()
        pattern, _ = prof.classify_pattern()
        assert pattern is PatternType.NON_DET


class TestRWClassification:
    def test_read_only(self):
        p = named_profiler(("a", REGION_A))
        for i in range(200):
            p.observe(i * 64, is_write=False)
        (_, prof), = p.profiles()
        assert prof.classify_rw() is RWChar.READ_ONLY

    def test_read_write(self):
        p = named_profiler(("a", REGION_A))
        for i in range(200):
            p.observe(i * 64, is_write=(i % 5 == 0))
        (_, prof), = p.profiles()
        assert prof.classify_rw() is RWChar.READ_WRITE

    def test_write_heavy(self):
        p = named_profiler(("a", REGION_A))
        for i in range(200):
            p.observe(i * 64, is_write=(i % 2 == 0))
        (_, prof), = p.profiles()
        assert prof.classify_rw() is RWChar.WRITE_HEAVY


class TestInference:
    def two_region_profile(self):
        p = named_profiler(("hot", REGION_A), ("cold", REGION_B))
        # Hot region: sequential, re-walked 8 times (high reuse).
        for _ in range(8):
            for i in range(100):
                p.observe(i * 64)
        # Cold region: one sequential pass.
        for i in range(100):
            p.observe((1 << 20) + i * 64)
        return p

    def test_relative_intensity(self):
        attrs = self.two_region_profile().infer_attributes()
        assert attrs["hot"].access_intensity == 255
        assert attrs["cold"].access_intensity < 64

    def test_relative_reuse(self):
        attrs = self.two_region_profile().infer_attributes()
        assert attrs["hot"].reuse == 255
        assert attrs["cold"].reuse == 0

    def test_untouched_regions_excluded(self):
        p = named_profiler(("a", REGION_A), ("b", REGION_B))
        p.observe(0)
        assert set(p.infer_attributes()) == {"a"}

    def test_empty_profiler(self):
        assert AccessProfiler().infer_attributes() == {}

    def test_auto_regions(self):
        p = AccessProfiler(region_bytes=4096)
        p.observe(0)
        p.observe(10_000)
        names = [n for n, _ in p.profiles()]
        assert len(names) == 2
        assert all(n.startswith("region@") for n in names)

    def test_bad_region_bytes(self):
        with pytest.raises(ConfigurationError):
            AccessProfiler(region_bytes=0)

    def test_observe_trace_skips_non_memory(self):
        p = AccessProfiler()
        n = p.observe_trace([MemAccess(0), Work(5), MemAccess(64)])
        assert n == 2


class TestInstrumentation:
    def test_full_profiling_path(self):
        """Profile an unannotated trace, then auto-create the atoms."""
        p = named_profiler(("stream", REGION_A), ("rand", REGION_B))
        rng = random.Random(1)
        for _ in range(4):
            for i in range(200):
                p.observe(i * 8)
        for _ in range(300):
            p.observe((1 << 20) + rng.randrange(1 << 18) // 64 * 64)

        lib = XMemLib()
        atom_ids = p.instrument(lib)
        assert set(atom_ids) == {"stream", "rand"}
        # The inferred atoms are live and queryable by address.
        got = lib.process.atom_for_paddr(128)
        assert got is not None
        assert got.attributes.access.pattern.pattern is \
            PatternType.REGULAR
        rand_atom = lib.process.atom_for_paddr((1 << 20) + 64)
        assert rand_atom is not None
        assert rand_atom.attributes.access.pattern.pattern is \
            PatternType.NON_DET

    def test_instrumented_atoms_feed_pats(self):
        p = named_profiler(("s", REGION_A))
        for i in range(300):
            p.observe(i * 8)
        lib = XMemLib()
        p.instrument(lib)
        lib.process.retranslate()
        assert lib.process.pats["dram"].lookup(0).high_rbl
