"""Tests for the XMem ISA instruction objects."""

import pytest

from repro.core.isa import (
    AtomMapInstruction,
    AtomOpcode,
    AtomStatusInstruction,
    atom_activate,
    atom_deactivate,
    atom_map,
    atom_unmap,
)
from repro.core.ranges import AddressRange


class TestConstructors:
    def test_atom_map(self):
        instr = atom_map(3, (AddressRange(0, 4096),))
        assert instr.opcode is AtomOpcode.ATOM_MAP
        assert instr.atom_id == 3
        assert instr.total_bytes == 4096

    def test_atom_unmap(self):
        instr = atom_unmap(3, (AddressRange(0, 64),))
        assert instr.opcode is AtomOpcode.ATOM_UNMAP

    def test_status_instructions(self):
        assert atom_activate(1).opcode is AtomOpcode.ATOM_ACTIVATE
        assert atom_deactivate(1).opcode is AtomOpcode.ATOM_DEACTIVATE

    def test_multi_range_total(self):
        instr = atom_map(0, (AddressRange(0, 64), AddressRange(128, 256)))
        assert instr.total_bytes == 64 + 128

    def test_instructions_are_immutable(self):
        instr = atom_activate(1)
        with pytest.raises(Exception):
            instr.atom_id = 2

    def test_instructions_hashable_and_equal(self):
        a = atom_map(1, (AddressRange(0, 64),))
        b = atom_map(1, (AddressRange(0, 64),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != atom_unmap(1, (AddressRange(0, 64),))

    def test_empty_map(self):
        instr = atom_map(0, ())
        assert instr.total_bytes == 0
        assert isinstance(instr, AtomMapInstruction)

    def test_status_has_no_ranges(self):
        instr = atom_activate(0)
        assert isinstance(instr, AtomStatusInstruction)
        assert not hasattr(instr, "va_ranges")
