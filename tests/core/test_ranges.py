"""Tests for address-range arithmetic (repro.core.ranges)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import AddressRangeError
from repro.core.ranges import AddressRange, RangeSet


class TestAddressRange:
    def test_from_size(self):
        r = AddressRange.from_size(0x1000, 0x200)
        assert r.start == 0x1000
        assert r.end == 0x1200
        assert r.size == 0x200

    def test_negative_size_rejected(self):
        with pytest.raises(AddressRangeError):
            AddressRange.from_size(0x1000, -1)

    def test_inverted_range_rejected(self):
        with pytest.raises(AddressRangeError):
            AddressRange(0x2000, 0x1000)

    def test_negative_start_rejected(self):
        with pytest.raises(AddressRangeError):
            AddressRange(-1, 10)

    def test_empty_range_allowed(self):
        assert AddressRange(0x1000, 0x1000).size == 0

    def test_contains(self):
        r = AddressRange(10, 20)
        assert 10 in r
        assert 19 in r
        assert 20 not in r
        assert 9 not in r

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 15))
        assert a.overlaps(AddressRange(0, 1))
        assert not a.overlaps(AddressRange(10, 20))
        assert not a.overlaps(AddressRange(20, 30))

    def test_intersection(self):
        a = AddressRange(0, 10)
        assert a.intersection(AddressRange(5, 15)) == AddressRange(5, 10)
        assert a.intersection(AddressRange(20, 30)).size == 0

    def test_chunks_aligned(self):
        r = AddressRange(0, 1024)
        assert list(r.chunks(512)) == [0, 1]

    def test_chunks_unaligned(self):
        # [100, 600) touches chunk 0 and chunk 1 at 512B granularity.
        r = AddressRange(100, 600)
        assert list(r.chunks(512)) == [0, 1]

    def test_chunks_single_byte(self):
        r = AddressRange(513, 514)
        assert list(r.chunks(512)) == [1]

    def test_chunks_empty_range(self):
        assert list(AddressRange(512, 512).chunks(512)) == []

    def test_chunks_bad_granularity(self):
        with pytest.raises(AddressRangeError):
            list(AddressRange(0, 10).chunks(0))

    def test_ordering(self):
        assert AddressRange(0, 5) < AddressRange(1, 2)


class TestRangeSet:
    def test_empty(self):
        rs = RangeSet()
        assert not rs
        assert len(rs) == 0
        assert rs.total_bytes == 0
        assert 0 not in rs

    def test_single_add(self):
        rs = RangeSet()
        rs.add(AddressRange(10, 20))
        assert 10 in rs and 19 in rs and 20 not in rs
        assert rs.total_bytes == 10

    def test_coalesce_adjacent(self):
        rs = RangeSet()
        rs.add(AddressRange(0, 10))
        rs.add(AddressRange(10, 20))
        assert len(rs) == 1
        assert list(rs) == [AddressRange(0, 20)]

    def test_coalesce_overlapping(self):
        rs = RangeSet()
        rs.add(AddressRange(0, 15))
        rs.add(AddressRange(10, 20))
        assert list(rs) == [AddressRange(0, 20)]

    def test_disjoint_stay_disjoint(self):
        rs = RangeSet()
        rs.add(AddressRange(0, 10))
        rs.add(AddressRange(20, 30))
        assert len(rs) == 2
        assert rs.total_bytes == 20

    def test_add_bridging_range(self):
        rs = RangeSet([AddressRange(0, 10), AddressRange(20, 30)])
        rs.add(AddressRange(5, 25))
        assert list(rs) == [AddressRange(0, 30)]

    def test_remove_middle_splits(self):
        rs = RangeSet([AddressRange(0, 30)])
        rs.remove(AddressRange(10, 20))
        assert list(rs) == [AddressRange(0, 10), AddressRange(20, 30)]

    def test_remove_entire(self):
        rs = RangeSet([AddressRange(0, 30)])
        rs.remove(AddressRange(0, 30))
        assert not rs

    def test_remove_prefix_suffix(self):
        rs = RangeSet([AddressRange(10, 20)])
        rs.remove(AddressRange(0, 15))
        assert list(rs) == [AddressRange(15, 20)]
        rs.remove(AddressRange(18, 100))
        assert list(rs) == [AddressRange(15, 18)]

    def test_remove_disjoint_noop(self):
        rs = RangeSet([AddressRange(10, 20)])
        rs.remove(AddressRange(30, 40))
        assert list(rs) == [AddressRange(10, 20)]

    def test_empty_add_remove_noop(self):
        rs = RangeSet([AddressRange(10, 20)])
        rs.add(AddressRange(5, 5))
        rs.remove(AddressRange(15, 15))
        assert list(rs) == [AddressRange(10, 20)]

    def test_equality_is_canonical(self):
        a = RangeSet([AddressRange(0, 10), AddressRange(10, 20)])
        b = RangeSet([AddressRange(0, 20)])
        assert a == b

    def test_copy_is_independent(self):
        a = RangeSet([AddressRange(0, 10)])
        b = a.copy()
        b.add(AddressRange(20, 30))
        assert len(a) == 1
        assert len(b) == 2

    def test_spans(self):
        rs = RangeSet([AddressRange(0, 10), AddressRange(20, 30)])
        assert rs.spans() == [(0, 10), (20, 30)]


# -- Property-based tests ------------------------------------------------

ranges = st.tuples(
    st.integers(min_value=0, max_value=2000),
    st.integers(min_value=0, max_value=200),
).map(lambda t: AddressRange.from_size(t[0], t[1]))


@given(st.lists(ranges, max_size=20))
def test_rangeset_membership_matches_naive(rngs):
    """RangeSet membership must equal the union of the input ranges."""
    rs = RangeSet(rngs)
    covered = set()
    for r in rngs:
        covered.update(range(r.start, r.end))
    for probe in range(0, 2300, 7):
        assert (probe in rs) == (probe in covered)


@given(st.lists(ranges, max_size=20))
def test_rangeset_total_bytes_matches_naive(rngs):
    rs = RangeSet(rngs)
    covered = set()
    for r in rngs:
        covered.update(range(r.start, r.end))
    assert rs.total_bytes == len(covered)


@given(st.lists(ranges, max_size=12), st.lists(ranges, max_size=12))
def test_rangeset_remove_matches_naive(adds, removes):
    rs = RangeSet(adds)
    covered = set()
    for r in adds:
        covered.update(range(r.start, r.end))
    for r in removes:
        rs.remove(r)
        covered -= set(range(r.start, r.end))
    assert rs.total_bytes == len(covered)
    for probe in range(0, 2300, 11):
        assert (probe in rs) == (probe in covered)


@given(st.lists(ranges, max_size=20))
def test_rangeset_is_sorted_and_disjoint(rngs):
    """Internal canonical form: sorted, disjoint, non-adjacent ranges."""
    rs = RangeSet(rngs)
    items = list(rs)
    for prev, cur in zip(items, items[1:]):
        assert prev.end < cur.start  # gap required (adjacent coalesced)
