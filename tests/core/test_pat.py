"""Tests for PATs and the Attribute Translator (repro.core.pat)."""

import pytest

from repro.core.attributes import (
    DataProperty,
    DataType,
    PatternType,
    make_attributes,
)
from repro.core.gat import GlobalAttributeTable
from repro.core.pat import (
    AttributeTranslator,
    HIGH_RBL_MAX_STRIDE,
    make_standard_pats,
    translate_for_cache,
    translate_for_compression,
    translate_for_dram,
    translate_for_prefetcher,
)


def streaming_attrs(stride=8, intensity=100, reuse=0):
    return make_attributes(
        "stream", pattern=PatternType.REGULAR, stride_bytes=stride,
        access_intensity=intensity, reuse=reuse,
    )


def irregular_attrs(intensity=50):
    return make_attributes(
        "graph", pattern=PatternType.IRREGULAR, access_intensity=intensity,
    )


class TestCacheTranslation:
    def test_reuse_and_stride_carried(self):
        prim = translate_for_cache(streaming_attrs(stride=64, reuse=200))
        assert prim.reuse == 200
        assert prim.prefetchable
        assert prim.stride_bytes == 64

    def test_non_det_not_prefetchable(self):
        prim = translate_for_cache(make_attributes("x"))
        assert not prim.prefetchable
        assert prim.stride_bytes == 0


class TestPrefetcherTranslation:
    def test_pattern_carried(self):
        prim = translate_for_prefetcher(streaming_attrs(stride=128))
        assert prim.pattern is PatternType.REGULAR
        assert prim.stride_bytes == 128

    def test_irregular_has_no_stride(self):
        prim = translate_for_prefetcher(irregular_attrs())
        assert prim.pattern is PatternType.IRREGULAR
        assert prim.stride_bytes == 0


class TestDramTranslation:
    def test_small_stride_regular_is_high_rbl(self):
        prim = translate_for_dram(streaming_attrs(stride=8))
        assert prim.high_rbl
        assert not prim.irregular

    def test_huge_stride_is_not_high_rbl(self):
        # Striding across rows gets no row-buffer benefit.
        prim = translate_for_dram(
            streaming_attrs(stride=HIGH_RBL_MAX_STRIDE * 8)
        )
        assert not prim.high_rbl

    def test_boundary_stride_is_high_rbl(self):
        prim = translate_for_dram(streaming_attrs(stride=HIGH_RBL_MAX_STRIDE))
        assert prim.high_rbl

    def test_negative_stride_counts(self):
        prim = translate_for_dram(streaming_attrs(stride=-8))
        assert prim.high_rbl

    def test_irregular_flagged(self):
        prim = translate_for_dram(irregular_attrs(intensity=99))
        assert prim.irregular
        assert not prim.high_rbl
        assert prim.intensity == 99


class TestCompressionTranslation:
    def test_properties_carried(self):
        attrs = make_attributes(
            "m", data_type=DataType.FLOAT32,
            properties=(DataProperty.SPARSE, DataProperty.APPROXIMABLE),
        )
        prim = translate_for_compression(attrs)
        assert prim.data_type is DataType.FLOAT32
        assert prim.sparse
        assert prim.approximable
        assert not prim.pointer


class TestTranslatorAndPats:
    def test_translate_fills_all_pats(self):
        gat = GlobalAttributeTable()
        gat.install(0, streaming_attrs())
        gat.install(1, irregular_attrs())
        pats = make_standard_pats()
        AttributeTranslator().translate(gat, pats)
        for name, pat in pats.items():
            assert len(pat) == 2, name
        assert pats["dram"].lookup(0).high_rbl
        assert pats["dram"].lookup(1).irregular

    def test_translate_flushes_stale_entries(self):
        gat = GlobalAttributeTable()
        gat.install(0, streaming_attrs())
        pats = make_standard_pats()
        tr = AttributeTranslator()
        tr.translate(gat, pats)
        # New process: different GAT without atom 0's semantics.
        gat2 = GlobalAttributeTable()
        gat2.install(0, irregular_attrs())
        tr.translate(gat2, pats)
        assert pats["dram"].lookup(0).irregular

    def test_unknown_component_fails_loud(self):
        gat = GlobalAttributeTable()
        pats = make_standard_pats()
        pats["quantum"] = pats.pop("cache")
        with pytest.raises(KeyError):
            AttributeTranslator().translate(gat, pats)

    def test_pat_lookup_missing_is_none(self):
        pats = make_standard_pats()
        assert pats["cache"].lookup(0) is None

    def test_pat_flush(self):
        pats = make_standard_pats()
        pats["cache"].install(0, translate_for_cache(streaming_attrs()))
        pats["cache"].flush()
        assert len(pats["cache"]) == 0

    def test_translation_counter(self):
        gat = GlobalAttributeTable()
        gat.install(0, streaming_attrs())
        tr = AttributeTranslator()
        pats = make_standard_pats()
        tr.translate(gat, pats)
        assert tr.translations_performed == len(pats)
