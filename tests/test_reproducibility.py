"""Determinism: identical runs must produce identical results.

Every randomized component (allocators, workload generators, random
replacement) is seeded, so a rerun of any experiment reproduces its
numbers bit-for-bit — the property that makes the EXPERIMENTS.md
tables reproducible.
"""

from repro.sim import build_baseline, build_xmem, scaled_config
from repro.sim.usecase2 import run_system
from repro.workloads.polybench import KERNELS
from repro.workloads.suite import BY_NAME


def test_usecase1_deterministic():
    def once():
        handle = build_xmem(scaled_config(16))
        stats = handle.run(
            KERNELS["gemm"].build_trace(48, 24, lib=handle.xmemlib)
        )
        return (stats.cycles, stats.instructions,
                handle.llc.stats.misses, handle.dram.stats.reads)

    assert once() == once()


def test_usecase1_baseline_deterministic():
    def once():
        handle = build_baseline(scaled_config(16))
        stats = handle.run(KERNELS["jacobi2d"].build_trace(48, 24))
        return (stats.cycles, handle.dram.stats.read_latency_sum)

    assert once() == once()


def test_usecase2_deterministic():
    def once(system):
        r = run_system(BY_NAME["kmeans"], system, accesses=8_000)
        return (r.cycles, r.record.dram_read_latency,
                r.record.dram_row_hit_rate)

    for system in ("baseline", "xmem", "ideal"):
        assert once(system) == once(system)


def test_suite_trace_independent_of_hash_randomization():
    """Seeds derive from workload names arithmetically, not hash()."""
    w = BY_NAME["lbm"]
    bases = {s.name: i << 24 for i, s in enumerate(w.structures)}
    first = [(e.vaddr, e.is_write) for e in w.trace(bases)][:500]
    second = [(e.vaddr, e.is_write) for e in w.trace(bases)][:500]
    assert first == second
