"""Scenario points through the runner: caching, manifests, co-run
tenancy, and the sweep dispatch."""

import json

import pytest

import repro.sim.runner as runner_mod
from repro.core.errors import ConfigurationError
from repro.scenarios import canonical_json, get_example, spec_hash
from repro.sim.runner import (
    CorunPoint,
    ScenarioPoint,
    SimPoint,
    TraceCache,
    point_document_name,
    run_any_point,
    run_corun_point,
    run_scenario_point,
    scenario_trace_key,
    sweep,
)


@pytest.fixture(autouse=True)
def clean_memo():
    """Each test starts with an empty in-process recording memo."""
    runner_mod._MEMO.clear()
    yield
    runner_mod._MEMO.clear()


@pytest.fixture
def disk_cache(tmp_path):
    return TraceCache(root=tmp_path / "traces")


def example_point(name="hotcold", **over):
    spec = canonical_json(get_example(name))
    return ScenarioPoint(spec_json=spec, **over)


class TestScenarioPoint:
    def test_properties(self):
        point = example_point()
        assert point.name == "hotcold"
        assert point.scenario_hash == spec_hash(get_example("hotcold"))

    def test_runs_both_systems_deterministically(self, disk_cache):
        first = run_scenario_point(example_point(), cache=disk_cache)
        second = run_scenario_point(example_point(), cache=disk_cache)
        assert set(first.runs) == {"baseline", "xmem"}
        for system in first.runs:
            assert first.runs[system].stats \
                == second.runs[system].stats

    def test_manifest_provenance(self, disk_cache):
        point = example_point()
        result = run_scenario_point(point, cache=disk_cache,
                                    collect=True)
        manifest = result.manifest
        assert manifest["kind"] == "scenariopoint"
        assert manifest["point"]["scenario"] == "hotcold"
        assert manifest["point"]["hash"] == point.scenario_hash
        assert "spec_json" not in manifest["point"]
        scn = manifest["scenario"]
        assert scn["kind"] == "workload"
        assert scn["events"] > 0 and scn["setup_calls"] > 0
        assert manifest["trace"]["key"] \
            == scenario_trace_key(point.scenario_hash)
        assert manifest["trace"]["source"] == "generated"

    def test_import_manifest_carries_format_and_sha(self, disk_cache):
        point = example_point("lackey-sample")
        manifest = run_scenario_point(point, cache=disk_cache,
                                      collect=True).manifest
        scn = manifest["scenario"]
        assert scn["kind"] == "import"
        assert scn["format"] == "lackey-v1"
        assert scn["sha256"] \
            == get_example("lackey-sample")["sha256"]

    def test_cold_then_hot_cache(self, disk_cache):
        point = example_point()
        cold = run_scenario_point(point, cache=disk_cache,
                                  collect=True)
        runner_mod._MEMO.clear()
        hot = run_scenario_point(point, cache=disk_cache, collect=True)
        assert cold.manifest["trace"]["source"] == "generated"
        assert hot.manifest["trace"]["source"] == "disk"
        assert cold.stats == hot.stats

    def test_run_any_point_dispatch(self, disk_cache):
        direct = run_scenario_point(example_point(), cache=disk_cache)
        routed = run_any_point(example_point(), cache=disk_cache)
        for system in direct.runs:
            assert direct.runs[system].stats \
                == routed.runs[system].stats

    def test_unknown_system_rejected(self, disk_cache):
        point = example_point(systems=("warp",))
        with pytest.raises(ConfigurationError, match="unknown system"):
            run_scenario_point(point, cache=disk_cache)

    def test_document_name(self, disk_cache):
        point = example_point()
        result = run_scenario_point(point, cache=disk_cache)
        name = point_document_name(3, result)
        assert name == f"003_scn_hotcold_{point.scenario_hash[:8]}.json"


class TestScenarioTenants:
    def test_corun_with_scenario_tenant(self, disk_cache):
        point = CorunPoint(tenants=("scenario:hotcold", "mcf"),
                           accesses=800, scale=16)
        first = run_corun_point(point, cache=disk_cache, collect=True)
        second = run_corun_point(point, cache=disk_cache)
        assert set(first.runs) == {"baseline", "xmem"}
        for mode in first.runs:
            assert first.runs[mode] == second.runs[mode]
        tenants = first.manifest["trace"]["tenants"]
        assert [t["workload"] for t in tenants] \
            == ["scenario:hotcold", "mcf"]
        scn_hash = spec_hash(get_example("hotcold"))
        assert tenants[0]["key"] == scenario_trace_key(scn_hash)

    def test_access_budget_truncates_in_memory(self, disk_cache):
        """Different budgets share one cached compilation; the budget
        is applied via PackedTrace.truncated, not a recompile."""
        small = CorunPoint(tenants=("scenario:hotcold",), accesses=200,
                           scale=16, modes=("baseline",))
        large = CorunPoint(tenants=("scenario:hotcold",), accesses=900,
                           scale=16, modes=("baseline",))
        a = run_corun_point(small, cache=disk_cache, collect=True)
        b = run_corun_point(large, cache=disk_cache, collect=True)
        assert a.manifest["trace"]["tenants"][0]["key"] \
            == b.manifest["trace"]["tenants"][0]["key"]
        assert b.manifest["trace"]["tenants"][0]["source"] == "memo"
        assert a.runs["baseline"][0].mem_accesses \
            <= small.accesses
        assert b.runs["baseline"][0].mem_accesses \
            > a.runs["baseline"][0].mem_accesses

    def test_footprint_div_rejected_for_scenarios(self, disk_cache):
        point = CorunPoint(tenants=("scenario:hotcold",),
                           accesses=200, footprint_div=4)
        with pytest.raises(ConfigurationError, match="footprint_div"):
            run_corun_point(point, cache=disk_cache)

    def test_unknown_ref_is_configuration_error(self, disk_cache):
        point = CorunPoint(tenants=("scenario:nope",), accesses=200)
        with pytest.raises(ConfigurationError):
            run_corun_point(point, cache=disk_cache)


class TestMixedSweep:
    def test_serial_parallel_identical(self, disk_cache, monkeypatch):
        monkeypatch.setattr(runner_mod, "TraceCache",
                            lambda root=None: disk_cache)
        points = [SimPoint(kernel="mvt", n=12, tile=4),
                  example_point(scale=16)]
        serial = sweep(points, jobs=1, collect_stats=True)
        parallel = sweep(points, jobs=2, collect_stats=True)
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert s.stats == p.stats
            for system in s.runs:
                assert s.runs[system].stats == p.runs[system].stats
