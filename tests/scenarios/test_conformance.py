"""Spec-driven conformance: every shipped example spec round-trips
through compile -> PackedTrace -> object stream against the reference
engine, and the trace-cache key pins exactly the spec's content.

This is the harness ISSUE 9 asks for: examples are discovered from the
package, so adding a spec file *is* adding its conformance coverage.
"""

import copy
import json

import pytest

from repro.cpu.engine import TraceEngine
from repro.cpu.trace import PackedTrace, strip_xmem
from repro.scenarios import (
    canonical_json,
    canonicalize,
    compile_canonical,
    example_names,
    get_example,
    spec_hash,
)
from repro.core.errors import ScenarioError
from repro.sim.runner import scenario_trace_key
from repro.testing.oracles import ReferenceEngine, ToyMemory

EXAMPLES = example_names()


def test_examples_shipped():
    assert {"streamgrid", "chase-mix", "hotcold",
            "lackey-sample"} <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
class TestExampleConformance:
    def test_canonical_and_compile_deterministic(self, name):
        a = get_example(name)
        b = get_example(name)
        assert a == b
        assert canonicalize(a) == a
        rec_a = compile_canonical(a)
        rec_b = compile_canonical(b)
        assert rec_a.setup == rec_b.setup
        assert rec_a.packed == rec_b.packed
        assert len(rec_a.packed) > 0

    def test_object_stream_equivalence(self, name):
        """Packed columns == reconstructed object stream == naive
        reference, on a seeded toy memory (the differential oracle)."""
        recording = compile_canonical(get_example(name))
        baseline = recording.packed.without_xmem()
        events = list(baseline.events())

        def toy():
            return ToyMemory(17, miss_rate=0.4)

        packed_stats = TraceEngine(toy(), issue_width=2,
                                   window=4).run(baseline)
        object_stats = TraceEngine(toy(), issue_width=2,
                                   window=4).run(events)
        want = ReferenceEngine(toy(), issue_width=2,
                               window=4).run(events)
        assert packed_stats == want
        assert object_stats == want

    def test_packed_round_trips_through_events(self, name):
        packed = compile_canonical(get_example(name)).packed
        assert PackedTrace.from_events(list(packed.events())) == packed

    def test_identical_specs_share_cache_key(self, name):
        a = get_example(name)
        b = canonicalize(json.loads(canonical_json(a)))
        assert scenario_trace_key(spec_hash(a)) \
            == scenario_trace_key(spec_hash(b))


def _scalar_paths(node, prefix=()):
    """Every (path, value) scalar leaf of a canonical spec."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _scalar_paths(value, prefix + (key,))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from _scalar_paths(value, prefix + (i,))
    elif node is not None:
        yield prefix, node


def _mutate(canonical, path, value):
    mutated = copy.deepcopy(canonical)
    node = mutated
    for step in path[:-1]:
        node = node[step]
    if isinstance(value, bool):
        node[path[-1]] = not value
    elif isinstance(value, int):
        node[path[-1]] = value + 1
    elif isinstance(value, float):
        node[path[-1]] = value + 0.03125 if value + 0.03125 <= 1.0 \
            else value - 0.03125
    elif isinstance(value, str):
        node[path[-1]] = value + "x"
    return mutated


@pytest.mark.parametrize("name", EXAMPLES)
def test_any_field_mutation_changes_cache_key(name):
    """Walk every scalar leaf of the canonical spec, nudge it, and pin
    that any mutation surviving validation lands on a different
    content hash (hence a different trace-cache key).  Mutations that
    validation rejects (bad enum, broken reference, checksum
    mismatch) are exactly the ones that must never reach the cache.
    """
    canonical = get_example(name)
    base_hash = spec_hash(canonical)
    tested = 0
    for path, value in _scalar_paths(canonical):
        mutated = _mutate(canonical, path, value)
        try:
            remade = canonicalize(mutated)
        except ScenarioError:
            continue
        tested += 1
        assert spec_hash(remade) != base_hash, \
            f"mutation at {path} did not change the spec hash"
        assert scenario_trace_key(spec_hash(remade)) \
            != scenario_trace_key(base_hash)
    # The walk must not be vacuous: plenty of single-field nudges are
    # valid specs.
    assert tested >= 5, f"only {tested} mutations survived validation"
