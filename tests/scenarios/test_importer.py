"""External-trace ingestion: parsers, integrity checks, and the
malformed-input property sweep (clean ScenarioError, never a crash or
a silently short trace)."""

import hashlib
import random

import pytest

from repro.core.errors import ScenarioError
from repro.cpu.trace import MemAccess, Work
from repro.scenarios import canonicalize, compile_canonical
from repro.scenarios.importer import (
    canonicalize_import,
    parse_csv,
    parse_lackey,
)

LACKEY = """\
==1234== banner noise the parser must skip
--1234-- more noise
I  0x400000,4
I  0x400004,4
 L 0x1000,8
 S 0x1040,4
I  0x400008,4
 M 0x1080,8
"""

CSV = """\
# comment
addr,rw,size,work
0x2000,R,8,3
0x2040,W
8320,r,4,0
"""


def imp(fmt, text, **over):
    body = {"kind": "import", "name": "t", "format": fmt,
            "line_bytes": 64, "text": text}
    body.update(over)
    return body


class TestLackeyParser:
    def test_parses_and_coalesces_instr_work(self):
        accesses = parse_lackey(LACKEY, 64, work_per_instr=2)
        # 2 instrs ride the first data access, 1 on the third.
        assert accesses == [(0x1000, False, 4), (0x1040, True, 0),
                            (0x1080, True, 2)]

    def test_multi_line_access_split(self):
        accesses = parse_lackey("L 0x103c,16\n", 64, 1)
        assert accesses == [(0x1000, False, 0), (0x1040, False, 0)]

    def test_compiled_event_stream(self):
        canonical = canonicalize(imp("lackey", LACKEY,
                                     work_per_instr=2))
        packed = compile_canonical(canonical).packed
        mem = [ev for ev in packed.events()
               if isinstance(ev, MemAccess)]
        assert [(ev.vaddr, ev.is_write) for ev in mem] == [
            (0x1000, False), (0x1040, True), (0x1080, True)]
        work = sum(ev.count for ev in packed.events()
                   if isinstance(ev, Work))
        work += sum(ev.work for ev in mem)
        assert work == 4 + 2


class TestCsvParser:
    def test_parses_header_comments_defaults(self):
        accesses = parse_csv(CSV, 64, 1)
        assert accesses == [(0x2000, False, 3), (0x2040, True, 0),
                            (8320, False, 0)]

    def test_decimal_and_hex_addresses_agree(self):
        assert parse_csv("8192,r\n", 64, 1) \
            == parse_csv("0x2000,R\n", 64, 1)


class TestIntegrity:
    def test_sha256_computed_when_omitted(self):
        canonical = canonicalize(imp("csv", CSV))
        assert canonical["sha256"] \
            == hashlib.sha256(CSV.encode()).hexdigest()

    def test_claimed_sha256_mismatch_rejected(self):
        with pytest.raises(ScenarioError, match="integrity"):
            canonicalize(imp("csv", CSV, sha256="0" * 64))

    def test_compile_reverifies_after_tamper(self):
        canonical = canonicalize(imp("csv", CSV))
        canonical["text"] += "0x9000,w\n"
        with pytest.raises(ScenarioError, match="at compile"):
            compile_canonical(canonical)

    def test_path_and_text_only_resolved_by_registry(self):
        # The canonicalizer must never read the filesystem: a "path"
        # key is unknown here (the registry inlines it first), so a
        # serve request can't point the server at its own disk.
        with pytest.raises(ScenarioError, match="unknown keys"):
            canonicalize_import(imp("csv", CSV, path="/etc/passwd"))


MALFORMED_LACKEY = [
    "L 0x1000",                       # truncated: no comma
    "L 0x1000,",                      # truncated: empty size
    "L ,8",                           # truncated: empty address
    "L zzzz,8",                       # bad hex
    "Q 0x1000,8",                     # unknown tag
    "L 0x1000,0",                     # size below range
    "L 0x1000,4096",                  # size above range
    f"L {1 << 48:#x},8",              # address out of range
    "L 0x1000 8",                     # space instead of comma
    "I 0x400000,4",                   # instrs only: empty trace
    "==1234== banner only",           # banners only: empty trace
    "",                               # empty text (refused pre-parse)
]

MALFORMED_CSV = [
    "0x1000",                         # one field
    "0x1000,r,4,1,9",                 # five fields
    "0x1000,x",                       # bad rw flag
    "zzzz,r",                         # bad address
    "0x1000,r,0",                     # size below range
    "0x1000,r,513",                   # size above range
    "0x1000,r,4,nope",                # bad work count
    "0x1000,r,4,-1",                  # negative work
    f"0x1000,r,4,{1 << 21}",          # work above range
    "# only a comment",               # empty trace
]


class TestMalformedRejection:
    """The property ISSUE 9 pins: a malformed stream is a clean
    ScenarioError at submission -- never another exception type,
    never a silently short trace."""

    @pytest.mark.parametrize("text", MALFORMED_LACKEY)
    def test_lackey_rejected(self, text):
        with pytest.raises(ScenarioError):
            canonicalize(imp("lackey", text))

    @pytest.mark.parametrize("text", MALFORMED_CSV)
    def test_csv_rejected(self, text):
        with pytest.raises(ScenarioError):
            canonicalize(imp("csv", text))

    @pytest.mark.parametrize("fmt,corpus", [
        ("lackey", "L 0x1000,8\nS 0x1040,4\nI 0x400000,4\nM 0x1080,8"),
        ("csv", "0x1000,r,8\n0x1040,w\n0x1080,r,4,2"),
    ])
    def test_random_corruption_never_short_reads(self, fmt, corpus):
        """Randomly corrupt a valid stream: every outcome is either a
        ScenarioError or a full parse of a still-valid stream (the
        parser must not drop the tail of a damaged input)."""
        rng = random.Random(99)
        corruptions = (
            lambda t, i: t[:i],                       # truncate
            lambda t, i: t[:i] + "zz" + t[i:],        # inject junk
            lambda t, i: t.replace(",", " ", 1),      # break a field
            lambda t, i: t[:i] + t[i + 1:],           # drop a char
        )
        for trial in range(200):
            corrupt = rng.choice(corruptions)
            text = corrupt(corpus, rng.randrange(len(corpus)))
            try:
                canonical = canonicalize(imp(fmt, text))
            except ScenarioError:
                continue
            # Survivors must be genuinely well-formed: every non-blank,
            # non-banner/comment payload line parsed into >= 1 access.
            packed = compile_canonical(canonical).packed
            assert len(packed) > 0

    def test_bad_format_rejected(self):
        with pytest.raises(ScenarioError, match="format"):
            canonicalize(imp("pin-v9", "0x1000,r"))

    def test_unknown_import_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown keys"):
            canonicalize(imp("csv", CSV, endianness="little"))

    def test_non_string_text_rejected(self):
        with pytest.raises(ScenarioError, match="text"):
            canonicalize(imp("csv", ["0x1000,r"]))
