"""The workload-spec DSL: canonicalization, defaults, rejection."""

import json

import pytest

from repro.core.errors import ConfigurationError, ScenarioError
from repro.scenarios import (
    SCENARIO_SPEC_VERSION,
    canonical_json,
    canonicalize,
    spec_hash,
)
from repro.scenarios.spec import (
    MAX_ACCESSES_PER_PHASE,
    MAX_PHASES,
    MAX_TOTAL_ACCESSES,
)

MINIMAL = {
    "kind": "workload",
    "name": "m",
    "regions": [{"name": "r", "bytes": 4096}],
    "phases": [{"kind": "strided", "region": "r", "accesses": 10}],
}


def minimal(**over):
    body = json.loads(json.dumps(MINIMAL))
    body.update(over)
    return body


class TestCanonicalization:
    def test_defaults_filled(self):
        c = canonicalize(minimal())
        assert c["kind"] == "workload"
        assert c["version"] == SCENARIO_SPEC_VERSION
        assert c["seed"] == 0
        assert c["line_bytes"] == 64
        assert c["work_per_access"] == 0
        assert c["atoms"] == []
        assert c["regions"] == [{"name": "r", "bytes": 4096,
                                 "base": None}]
        assert c["phases"] == [{"kind": "strided", "region": "r",
                                "accesses": 10, "stride_lines": 1,
                                "start_line": 0, "write_frac": 0.0}]

    def test_kind_defaults_to_workload(self):
        body = minimal()
        del body["kind"]
        assert canonicalize(body) == canonicalize(minimal())

    def test_idempotent(self):
        c = canonicalize(minimal())
        assert canonicalize(c) == c
        assert canonicalize(json.loads(canonical_json(c))) == c

    def test_atom_defaults(self):
        c = canonicalize(minimal(
            atoms=[{"name": "a", "region": "r"}]))
        assert c["atoms"] == [{
            "name": "a", "region": "r", "pattern": "regular",
            "stride_bytes": 64, "rw": "read_write",
            "intensity": 128, "reuse": 128}]

    def test_irregular_atom_has_no_default_stride(self):
        c = canonicalize(minimal(
            atoms=[{"name": "a", "region": "r",
                    "pattern": "irregular"}]))
        assert c["atoms"][0]["stride_bytes"] is None

    def test_hash_insensitive_to_key_order(self):
        a = canonicalize(minimal())
        shuffled = dict(reversed(list(minimal().items())))
        b = canonicalize(shuffled)
        assert spec_hash(a) == spec_hash(b)

    def test_scenario_error_is_a_configuration_error(self):
        # The CLI (exit 2) and serve (HTTP 400) paths both key off
        # ConfigurationError; spec problems must ride the same rail.
        assert issubclass(ScenarioError, ConfigurationError)


class TestRejection:
    @pytest.mark.parametrize("body,fragment", [
        ([1, 2], "must be an object"),
        (minimal(bogus=1), "unknown keys"),
        (minimal(kind="warp"), "must be 'workload'"),
        (minimal(version=SCENARIO_SPEC_VERSION + 1), "version"),
        (minimal(name="!!"), "identifier"),
        (minimal(name=7), "identifier"),
        (minimal(seed=True), "integer"),
        (minimal(seed=-1), "in ["),
        (minimal(line_bytes=96), "power of two"),
        (minimal(work_per_access=-1), "in ["),
        (minimal(regions=[]), "non-empty list"),
        (minimal(regions=[{"name": "r", "bytes": 4096, "huge": 1}]),
         "unknown keys"),
        (minimal(regions=[{"name": "r", "bytes": 32}]), "in ["),
        (minimal(regions=[{"name": "r", "bytes": 4096, "base": 100}]),
         "aligned"),
        (minimal(regions=[{"name": "r", "bytes": 4096},
                          {"name": "r", "bytes": 4096}]),
         "duplicate region"),
        (minimal(atoms=[{"name": "a", "region": "nope"}]),
         "unknown region"),
        (minimal(atoms=[{"name": "a", "region": "r",
                         "pattern": "zigzag"}]), "one of"),
        (minimal(atoms=[{"name": "a", "region": "r",
                         "intensity": 256}]), "in ["),
        (minimal(atoms=[{"name": "a", "region": "r"},
                        {"name": "a", "region": "r"}]),
         "duplicate atom"),
        (minimal(phases=[]), "non-empty list"),
        (minimal(phases=[{"kind": "sprint", "region": "r",
                          "accesses": 1}]), "one of"),
        (minimal(phases=[{"kind": "strided", "region": "nope",
                          "accesses": 1}]), "unknown region"),
        (minimal(phases=[{"kind": "strided", "region": "r",
                          "accesses": 0}]), "in ["),
        (minimal(phases=[{"kind": "strided", "region": "r",
                          "accesses": MAX_ACCESSES_PER_PHASE + 1}]),
         "in ["),
        (minimal(phases=[{"kind": "strided", "region": "r",
                          "accesses": 1, "write_frac": 1.5}]),
         "[0.0, 1.0]"),
        (minimal(phases=[{"kind": "strided", "region": "r",
                          "accesses": 1, "hot_lines": 4}]),
         "unknown keys"),
        (minimal(phases=[{"kind": "mix", "accesses": 1,
                          "weights": [0, 0, 0]}]), "sum to > 0"),
        (minimal(phases=[{"kind": "mix", "accesses": 1,
                          "weights": [1, 2]}]), "three"),
        (minimal(phases=[{"kind": "mix", "accesses": 1,
                          "run_len": [9, 3]}]), "lo <= hi"),
        (minimal(phases=[{"kind": "mix", "accesses": 1,
                          "regions": []}]), "non-empty list"),
    ])
    def test_malformed_rejected(self, body, fragment):
        with pytest.raises(ScenarioError) as exc:
            canonicalize(body)
        assert fragment in str(exc.value)

    def test_too_many_phases(self):
        phases = [{"kind": "strided", "region": "r", "accesses": 1}
                  ] * (MAX_PHASES + 1)
        with pytest.raises(ScenarioError, match="at most"):
            canonicalize(minimal(phases=phases))

    def test_total_access_budget(self):
        per = MAX_ACCESSES_PER_PHASE
        phases = [{"kind": "strided", "region": "r", "accesses": per}
                  ] * (MAX_TOTAL_ACCESSES // per + 1)
        with pytest.raises(ScenarioError, match="total accesses"):
            canonicalize(minimal(phases=phases))
