"""Shared helpers for the serve test suites (pool/workspace/progress).

``test_serve.py`` predates these and carries its own copies; new serve
suites import from here.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from repro.serve.app import serve


def boot_server(**kwargs):
    """A serving server plus its serve_forever thread."""
    kwargs.setdefault("cache_dir", "off")
    srv = serve(port=0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def stop_server(srv, thread):
    srv.shutdown()
    srv.close()
    thread.join(timeout=10)


def call(server, method, path, body=None):
    """One request against an in-process server: ``(status, doc)``."""
    host, port = server.server_address[:2]
    payload = json.dumps(body).encode() if body is not None else None
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        status = resp.status
    finally:
        conn.close()
    return status, json.loads(data)


def kernel_scenario(server, kernel="mvt", n=48, tile=16):
    """POST one kernel scenario; returns its hash."""
    status, doc = call(server, "POST", "/v1/scenarios",
                       {"kind": "kernel", "kernel": kernel,
                        "n": n, "tile": tile})
    assert status in (200, 201), doc
    return doc["scenario"]


def submit_run(server, scenario, configs=None, **extra):
    body = {"scenario": scenario, "configs": configs or [{}]}
    body.update(extra)
    status, doc = call(server, "POST", "/v1/runs", body)
    assert status == 202, doc
    return doc["run"]


def wait_run(server, run_id, timeout=120.0):
    """Poll one run to a terminal state (and drained ``running``
    count -- a cancelled in-flight point finishes asynchronously);
    returns the final document."""
    deadline = time.monotonic() + timeout
    doc = {"status": "missing"}
    while time.monotonic() < deadline:
        status, doc = call(server, "GET", f"/v1/runs/{run_id}")
        assert status == 200, doc
        if doc["status"] in ("done", "failed", "cancelled") and (
                doc["points"]["running"] == 0) and (
                "out_dir" not in doc or "written" in doc
                or doc["status"] != "done"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"{run_id} still {doc['status']!r} "
                         f"after {timeout}s")
