"""The process-pool executor: parity, recycling, crash isolation,
in-flight cancel, and the per-run engine knob.

Everything here boots ``executor="process"`` -- the pieces the thread
executor cannot do (true parallelism aside): a crashed worker failing
only its point, a cancelled in-flight point freeing its pool slot
immediately, and per-point ``REPRO_ENGINE`` overrides scoped inside a
child process.

Fault injection rides the two ``REPRO_SERVE_TEST_*`` environment
variables from :mod:`repro.serve.pool`; they are set *before* the
server boots so the spawn children inherit them.
"""

from __future__ import annotations

import time

import pytest

from repro.serve.pool import CRASH_ENV, SLOW_ENV
from repro.serve.scenarios import ScenarioSpec

from .conftest import (boot_server, call, kernel_scenario, stop_server,
                       submit_run, wait_run)


def _hash(kernel, n=48, tile=16):
    return ScenarioSpec(kind="kernel", workload=kernel,
                        n=n, tile=tile).scenario_hash


@pytest.fixture
def pool_server():
    """One-worker process-pool server (deterministic dispatch order)."""
    srv, thread = boot_server(workers=1, executor="process")
    yield srv
    stop_server(srv, thread)


class TestProcessExecution:
    """A process-pool run behaves exactly like a thread run."""

    def test_batch_completes_with_documents(self, pool_server):
        h = kernel_scenario(pool_server)
        rid = submit_run(pool_server, h, [{}, {"scale": 2}])
        doc = wait_run(pool_server, rid)
        assert doc["status"] == "done"
        assert doc["points"]["done"] == 2
        assert set(doc["documents"]) == set(doc["names"])
        for point_doc in doc["documents"].values():
            assert point_doc["manifest"]["kind"] == "servepoint"
            assert point_doc["manifest"]["serve"]["scenario"] == h

    def test_dedup_still_holds_under_the_pool(self, pool_server):
        h = kernel_scenario(pool_server)
        first = submit_run(pool_server, h)
        wait_run(pool_server, first)
        second = submit_run(pool_server, h)
        doc = wait_run(pool_server, second)
        assert doc["status"] == "done"
        _, state = call(pool_server, "GET", "/debug/state")
        assert state["serve"]["points_executed"] == 1
        assert state["serve"]["points_deduped"] == 1
        assert state["serve"]["points_dispatched"] == 1

    def test_pool_reported_in_health(self, pool_server):
        _, doc = call(pool_server, "GET", "/health")
        assert doc["pool"]["executor"] == "process"
        assert doc["pool"]["recycle_after"] == 32
        assert len(doc["pool"]["workers"]) == 1
        # Children spawn lazily: an idle slot has no pid yet and the
        # server is healthy regardless.
        assert doc["status"] == "ok"
        assert doc["workers"] == {"alive": 1, "configured": 1}


class TestRecycling:
    """A child retires after ``recycle_after`` jobs; no point is lost."""

    def test_pid_changes_after_recycle_and_no_point_lost(self):
        srv, thread = boot_server(workers=1, executor="process",
                                  recycle_after=2)
        try:
            h = kernel_scenario(srv)

            def pool_worker(predicate):
                # Recycle bookkeeping lands just after the point
                # completion that triggered it: poll briefly.
                deadline = time.monotonic() + 10
                while True:
                    _, doc = call(srv, "GET", "/health")
                    worker = doc["pool"]["workers"][0]
                    if predicate(worker) or time.monotonic() > deadline:
                        return worker

            # Job 1: the child spawns and stays warm (1 < recycle_after).
            wait_run(srv, submit_run(srv, h, [{}]))
            first = pool_worker(lambda w: w["jobs_since_recycle"] == 1)
            assert first["pid"] is not None
            assert first["jobs_since_recycle"] == 1

            # Job 2 hits the recycle threshold: the child retires.
            wait_run(srv, submit_run(srv, h, [{"scale": 2}]))
            retired = pool_worker(lambda w: w["recycles"] == 1)
            assert retired["pid"] is None
            assert retired["recycles"] == 1

            # Job 3 spawns a fresh child -- a different process.
            doc = wait_run(srv, submit_run(srv, h, [{"scale": 4}]))
            assert doc["status"] == "done"
            fresh = pool_worker(lambda w: w["pid"] is not None)
            assert fresh["pid"] is not None
            assert fresh["pid"] != first["pid"]

            _, state = call(srv, "GET", "/debug/state")
            assert state["serve"]["workers_recycled"] == 1
            assert state["serve"]["points_executed"] == 3
            assert state["serve"]["points_failed"] == 0
        finally:
            stop_server(srv, thread)


class TestCrashIsolation:
    """A dying worker fails its point -- never the server."""

    def test_crash_fails_one_point_not_the_run_sibling(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, _hash("jacobi2d"))
        srv, thread = boot_server(workers=1, executor="process")
        try:
            good = kernel_scenario(srv, "mvt")
            bad = kernel_scenario(srv, "jacobi2d")
            _, doc = call(srv, "POST", "/v1/runs", {
                "points": [{"scenario": bad, "config": {}},
                           {"scenario": good, "config": {}}]})
            rid = doc["run"]
            final = wait_run(srv, rid)
            assert final["status"] == "failed"
            assert final["points"]["failed"] == 1
            assert final["points"]["done"] == 1
            crashed_name = [n for n in final["names"]
                            if "jacobi2d" in n][0]
            assert "worker crashed (exit 23)" in \
                final["errors"][crashed_name]
            # The sibling executed and served a full document.
            good_name = [n for n in final["names"] if "mvt" in n][0]
            assert good_name in final["documents"]

            # The server is still healthy and still executes.
            status, health = call(srv, "GET", "/health")
            assert status == 200 and health["status"] == "ok"
            again = wait_run(srv, submit_run(srv, good, [{"scale": 2}]))
            assert again["status"] == "done"

            _, state = call(srv, "GET", "/debug/state")
            assert state["serve"]["workers_crashed"] == 1
            assert state["serve"]["internal_errors"] == 0
        finally:
            stop_server(srv, thread)


class TestInFlightCancel:
    """DELETE while a point executes terminates the child and frees
    the slot -- cancel is not wait-for-completion."""

    def test_cancel_kills_the_running_point(self, monkeypatch):
        monkeypatch.setenv(SLOW_ENV, f"{_hash('gemver')}:30")
        srv, thread = boot_server(workers=1, executor="process")
        try:
            slow = kernel_scenario(srv, "gemver")
            fast = kernel_scenario(srv, "mvt")
            rid = submit_run(srv, slow)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, doc = call(srv, "GET", f"/v1/runs/{rid}")
                if doc["points"]["running"]:
                    break
                time.sleep(0.02)
            assert doc["points"]["running"] == 1

            t0 = time.monotonic()
            status, _ = call(srv, "DELETE", f"/v1/runs/{rid}")
            assert status == 200
            final = wait_run(srv, rid, timeout=15)
            assert final["status"] == "cancelled"
            assert final["points"]["cancelled"] == 1

            # The slot is free: a fresh point completes far inside the
            # 30 s the cancelled child would still be sleeping.
            after = wait_run(srv, submit_run(srv, fast), timeout=60)
            assert after["status"] == "done"
            assert time.monotonic() - t0 < 25

            _, state = call(srv, "GET", "/debug/state")
            assert state["serve"]["points_cancelled_running"] == 1
        finally:
            stop_server(srv, thread)


class TestPerRunEngine:
    """``{"engine": tier}`` in a run config -- satellite 1."""

    def test_engine_reaches_the_manifest_tier(self, pool_server):
        h = kernel_scenario(pool_server)
        rid = submit_run(pool_server, h, [{}, {"engine": "object"}])
        doc = wait_run(pool_server, rid)
        assert doc["status"] == "done"
        tiers = {name: d["manifest"]["trace"]["tier"]
                 for name, d in doc["documents"].items()}
        assert sorted(tiers.values()) == ["object", "packed"]
        # The override is recorded in the serve block and the
        # manifest env, exactly like REPRO_ENGINE on a CLI sweep.
        for name, d in doc["documents"].items():
            serve_block = d["manifest"]["serve"]
            if tiers[name] == "object":
                assert serve_block["engine"] == "object"
                assert d["manifest"]["env"]["REPRO_ENGINE"] == "object"
            else:
                assert "engine" not in serve_block

    def test_engine_is_part_of_point_identity(self, pool_server):
        h = kernel_scenario(pool_server)
        wait_run(pool_server, submit_run(pool_server, h, [{}]))
        doc = wait_run(pool_server, submit_run(
            pool_server, h, [{"engine": "object"}]))
        assert doc["status"] == "done"
        _, state = call(pool_server, "GET", "/debug/state")
        # Different engine, different point: no dedup.
        assert state["serve"]["points_executed"] == 2
        assert state["serve"]["points_deduped"] == 0

    def test_unknown_engine_is_a_400(self, pool_server):
        h = kernel_scenario(pool_server)
        status, doc = call(pool_server, "POST", "/v1/runs",
                           {"scenario": h,
                            "configs": [{"engine": "warp"}]})
        assert status == 400
        assert "unknown engine" in doc["error"]

    def test_thread_executor_rejects_engine_overrides(self):
        srv, thread = boot_server(workers=1, executor="thread")
        try:
            h = kernel_scenario(srv)
            status, doc = call(srv, "POST", "/v1/runs",
                               {"scenario": h,
                                "configs": [{"engine": "object"}]})
            assert status == 400
            assert "process executor" in doc["error"]
            # Engine-free configs still run fine.
            final = wait_run(srv, submit_run(srv, h))
            assert final["status"] == "done"
        finally:
            stop_server(srv, thread)
