"""Incremental progress: ``?since=`` long-poll and ``?stream=1``.

The completion event log is append-only and completion-ordered: a
client that remembers the ``next`` counter sees every point exactly
once, in the order they finished, across any number of polls.  The
thread executor keeps these deterministic and fast; SLOW-hash fault
injection (process executor) gives the long-poll something to
actually wait on.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.serve.pool import SLOW_ENV
from repro.serve.scenarios import ScenarioSpec

from .conftest import (boot_server, call, kernel_scenario, stop_server,
                       submit_run, wait_run)


@pytest.fixture
def server():
    srv, thread = boot_server(workers=2)
    yield srv
    stop_server(srv, thread)


class TestSincePolling:
    def test_events_cover_every_point_exactly_once(self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h, [{}, {"scale": 2}, {"scale": 4}])
        wait_run(server, rid)
        status, doc = call(server, "GET", f"/v1/runs/{rid}?since=0")
        assert status == 200
        assert doc["run"] == rid
        assert doc["since"] == 0
        assert doc["next"] == 3
        assert [e["seq"] for e in doc["events"]] == [0, 1, 2]
        assert sorted(e["name"] for e in doc["events"]) == \
            sorted(doc["points"] and
                   [f"{i:03d}_mvt_n48_t16.json" for i in range(3)])
        for event in doc["events"]:
            assert event["state"] == "done"
            assert event["document"]["manifest"]["kind"] == "servepoint"
            assert event["wall_s"] >= 0

    def test_incremental_polls_return_only_new_events(self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h, [{}, {"scale": 2}])
        wait_run(server, rid)
        _, first = call(server, "GET", f"/v1/runs/{rid}?since=0")
        _, rest = call(server, "GET",
                       f"/v1/runs/{rid}?since={first['next']}")
        assert rest["events"] == []
        assert rest["next"] == first["next"]
        assert rest["status"] == "done"
        _, tail = call(server, "GET", f"/v1/runs/{rid}?since=1")
        assert [e["seq"] for e in tail["events"]] == [1]

    def test_deduped_and_failed_points_are_events_too(self, server):
        h = kernel_scenario(server)
        wait_run(server, submit_run(server, h))
        # Entire run deduped onto a done entry: its event is visible
        # immediately, before any worker touches it.
        rid = submit_run(server, h)
        _, doc = call(server, "GET", f"/v1/runs/{rid}?since=0&wait=0")
        assert doc["next"] == 1
        assert doc["events"][0]["state"] == "done"

    def test_terminal_run_returns_immediately_not_after_wait(
            self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h)
        wait_run(server, rid)
        t0 = time.monotonic()
        _, doc = call(server, "GET",
                      f"/v1/runs/{rid}?since=1&wait=30")
        assert time.monotonic() - t0 < 5
        assert doc["status"] == "done"

    def test_long_poll_blocks_until_completion(self, monkeypatch):
        slow = ScenarioSpec(kind="kernel", workload="gemver",
                            n=48, tile=16).scenario_hash
        monkeypatch.setenv(SLOW_ENV, f"{slow}:1.5")
        srv, thread = boot_server(workers=1, executor="process")
        try:
            kernel_scenario(srv, "gemver")
            rid = submit_run(srv, slow)
            t0 = time.monotonic()
            _, doc = call(srv, "GET",
                          f"/v1/runs/{rid}?since=0&wait=45")
            elapsed = time.monotonic() - t0
            # The poll waited for the stalled point instead of
            # returning an empty set instantly.
            assert doc["next"] == 1
            assert doc["events"][0]["state"] == "done"
            assert elapsed >= 1.0
        finally:
            stop_server(srv, thread)

    def test_bad_since_and_wait_are_400(self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h)
        wait_run(server, rid)
        for query in ("since=abc", "since=-1", "since=0&wait=soon"):
            status, doc = call(server, "GET",
                               f"/v1/runs/{rid}?{query}")
            assert status == 400, query
            assert "error" in doc


class TestStreaming:
    def _stream_lines(self, server, rid, since=0, timeout=120):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request("GET",
                         f"/v1/runs/{rid}?stream=1&since={since}")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.getheader("Content-Type") == \
                "application/x-ndjson"
            lines = []
            while True:
                line = resp.readline()
                if not line:
                    break
                lines.append(json.loads(line))
            return lines
        finally:
            conn.close()

    def test_stream_yields_every_event_then_a_summary(self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h, [{}, {"scale": 2}])
        lines = self._stream_lines(server, rid)
        *events, summary = lines
        assert len(events) == 2
        assert {e["state"] for e in events} == {"done"}
        assert summary["run"] == rid
        assert summary["status"] == "done"
        assert summary["points"]["done"] == 2
        assert summary["next"] == 2

    def test_stream_observes_a_live_run(self, server):
        """Consume the stream while the run executes -- the stream
        ends on its own when the run reaches a terminal state."""
        h = kernel_scenario(server)
        rid = submit_run(server, h, [{}, {"scale": 2}, {"scale": 4}])
        collected = []
        worker = threading.Thread(
            target=lambda: collected.extend(
                self._stream_lines(server, rid)))
        worker.start()
        worker.join(timeout=120)
        assert not worker.is_alive()
        assert collected[-1]["status"] == "done"
        assert len(collected) == 4  # 3 events + summary

    def test_stream_since_skips_consumed_events(self, server):
        h = kernel_scenario(server)
        rid = submit_run(server, h, [{}, {"scale": 2}])
        wait_run(server, rid)
        lines = self._stream_lines(server, rid, since=1)
        assert [l["seq"] for l in lines[:-1]] == [1]
        assert lines[-1]["status"] == "done"

    def test_archived_runs_do_not_long_poll(self, tmp_path):
        """A workspace-served run has no live event log: plain GET
        works, since/stream parameters are simply ignored."""
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            rid = submit_run(srv, h)
            wait_run(srv, rid)
        finally:
            stop_server(srv, thread)
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            status, doc = call(srv, "GET",
                               f"/v1/runs/{rid}?since=0&wait=30")
            assert status == 200
            assert doc["archived"] is True
            assert doc["status"] == "done"
        finally:
            stop_server(srv, thread)
