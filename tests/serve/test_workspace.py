"""The disk-backed artifact workspace: persistence, restart recovery,
byte identity, TTL + size eviction, and the resumable-run story.

HTTP-level tests here boot the thread executor -- workspace behavior
is executor-independent and in-process execution keeps them fast; the
pool suite covers the process side.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.serve.workspace import ArtifactWorkspace, _dump_json

from .conftest import (boot_server, call, kernel_scenario, stop_server,
                       submit_run, wait_run)

H1 = "a" * 16
H2 = "b" * 16
H3 = "c" * 16


class TestWorkspaceUnits:
    """ArtifactWorkspace in isolation."""

    def test_point_roundtrip_first_write_wins(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path)
        assert ws.save_point((H1, H2), {"v": 1}) is True
        assert ws.save_point((H1, H2), {"v": 2}) is False
        assert ws.load_point((H1, H2)) == {"v": 1}
        assert ws.load_point((H1, H3)) is None

    def test_invalid_keys_never_touch_the_filesystem(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path)
        for bad in (("../../etc/passwd", H2), (H1, "UPPER-nothex!!"),
                    ("short", H2), (H1, H2 + "00")):
            assert ws.save_point(bad, {"v": 1}) is False
            assert ws.load_point(bad) is None
        assert ws.load_run("../oops") is None
        ws.save_run({"run": "../oops", "status": "done"})
        assert list(tmp_path.rglob("*oops*")) == []

    def test_point_bytes_are_the_serve_document_format(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path)
        doc = {"b": [1, 2], "a": {"nested": True}}
        ws.save_point((H1, H2), doc)
        raw = (tmp_path / "points" / f"{H1}_{H2}.json").read_bytes()
        assert raw == _dump_json(doc)
        assert raw == (json.dumps(doc, sort_keys=True, indent=2)
                       + "\n").encode()

    def test_run_records_and_id_sequence(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path)
        ws.save_run({"run": "run-000007", "status": "done",
                     "point_keys": [[H1, H2]]})
        ws.save_run({"run": "run-000002", "status": "done",
                     "point_keys": []})
        assert ws.run_ids() == ["run-000002", "run-000007"]
        assert ws.max_run_number() == 7
        assert ws.load_run("run-000007")["status"] == "done"

    def test_ttl_eviction_takes_runs_and_their_points(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path, ttl_s=100.0)
        ws.save_point((H1, H2), {"v": 1})
        ws.save_run({"run": "run-000001", "status": "done",
                     "point_keys": [[H1, H2]]})
        now = time.time()
        assert ws.evict(now=now) == 0
        assert ws.evict(now=now + 1000) == 2  # record + its point
        assert ws.load_run("run-000001") is None
        assert ws.load_point((H1, H2)) is None

    def test_shared_points_survive_partial_eviction(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path, ttl_s=100.0)
        ws.save_point((H1, H2), {"v": 1})
        ws.save_run({"run": "run-000001", "status": "done",
                     "point_keys": [[H1, H2]]})
        old = time.time() - 1000
        path = tmp_path / "runs" / "run-000001.json"
        os.utime(path, (old, old))
        # A younger run references the same point document.
        ws.save_run({"run": "run-000002", "status": "done",
                     "point_keys": [[H1, H2]]})
        assert ws.evict() == 1  # only the expired record
        assert ws.load_point((H1, H2)) == {"v": 1}
        assert ws.load_run("run-000002") is not None

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path, ttl_s=1e9, limit_bytes=1)
        for i, scenario in enumerate((H1, H2), start=1):
            ws.save_point((scenario, H3), {"v": i, "pad": "x" * 256})
            ws.save_run({"run": f"run-{i:06d}", "status": "done",
                         "point_keys": [[scenario, H3]]})
            when = time.time() - 100 + i
            path = tmp_path / "runs" / f"run-{i:06d}.json"
            os.utime(path, (when, when))
        ws.evict()
        # Nothing fits in 1 byte: everything goes, oldest first (both
        # here); the workspace never errors on an aggressive bound.
        assert ws.run_ids() == []
        assert ws.load_point((H1, H3)) is None

    def test_unreferenced_scenarios_need_ttl_expiry_too(self, tmp_path):
        ws = ArtifactWorkspace(tmp_path, ttl_s=100.0)
        ws.save_scenario({"scenario": H1, "kind": "kernel"})
        # Freshly built, no run yet: must survive eviction.
        assert ws.evict() == 0
        assert [r["scenario"] for r in ws.load_scenarios()] == [H1]
        path = tmp_path / "scenarios" / f"{H1}.json"
        old = time.time() - 1000
        os.utime(path, (old, old))
        assert ws.evict() == 1
        assert ws.load_scenarios() == []


class TestWorkspacePersistence:
    """A live server writing through to its workspace."""

    def test_completed_points_persist_byte_identical(self, tmp_path):
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            doc = wait_run(srv, submit_run(srv, h, [{}, {"scale": 2}]))
            assert doc["status"] == "done"
            points = sorted((tmp_path / "points").glob("*.json"))
            assert len(points) == 2
            served = {  # config-hash -> served document
                d["manifest"]["serve"]["config_hash"]: d
                for d in doc["documents"].values()}
            for path in points:
                config = path.stem.split("_")[1]
                assert path.read_bytes() == _dump_json(served[config])
            # The scenario record landed too (rehydration source).
            assert (tmp_path / "scenarios" / f"{h}.json").exists()
        finally:
            stop_server(srv, thread)

    def test_resubmission_is_a_workspace_hit(self, tmp_path):
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            wait_run(srv, submit_run(srv, h))
        finally:
            stop_server(srv, thread)
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            # The scenario rehydrated at boot: no rebuild on POST.
            status, doc = call(srv, "POST", "/v1/scenarios",
                               {"kind": "kernel", "kernel": "mvt",
                                "n": 48, "tile": 16})
            assert status == 200 and doc["created"] is False
            final = wait_run(srv, submit_run(srv, h))
            assert final["status"] == "done"
            _, state = call(srv, "GET", "/debug/state")
            assert state["serve"]["workspace_hits"] == 1
            assert state["serve"]["points_executed"] == 0
            # workspace_hits and points_deduped partition the
            # not-executed cases: disk restore is not memory dedup.
            assert state["serve"]["points_deduped"] == 0
        finally:
            stop_server(srv, thread)


class TestRestartRecovery:
    """Kill the server; a successor on the same --workspace serves
    everything the first one completed."""

    def test_archived_runs_served_after_restart(self, tmp_path):
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            rid = submit_run(srv, h, [{}, {"scale": 2}])
            before = wait_run(srv, rid)
            assert before["status"] == "done"
        finally:
            stop_server(srv, thread)

        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            _, listing = call(srv, "GET", "/v1/runs")
            assert rid in listing["archived"]
            status, after = call(srv, "GET", f"/v1/runs/{rid}")
            assert status == 200
            assert after["archived"] is True
            assert after["status"] == "done"
            assert after["names"] == before["names"]
            # Byte-identical: identical parsed documents, and the disk
            # bytes equal the canonical dump of what was served live.
            assert after["documents"] == before["documents"]
            for path in (tmp_path / "points").glob("*.json"):
                name = [n for n, d in before["documents"].items()
                        if path.stem.endswith(
                            d["manifest"]["serve"]["config_hash"])]
                assert len(name) == 1
                assert path.read_bytes() == _dump_json(
                    before["documents"][name[0]])
            # The id sequence resumes past everything persisted.
            rid2 = submit_run(srv, h, [{"scale": 4}])
            assert rid2 > rid
        finally:
            stop_server(srv, thread)

    def test_interrupted_run_is_cleanly_failed_and_resumable(
            self, tmp_path):
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            done = wait_run(srv, submit_run(srv, h, [{}]))
            name_done = done["names"][0]
        finally:
            stop_server(srv, thread)

        # Forge what a mid-batch crash leaves behind: a non-terminal
        # record naming one completed point and one that never ran.
        ws = ArtifactWorkspace(tmp_path)
        record = ws.load_run("run-000001")
        key_done = record["point_keys"][0]
        ws.save_run({
            "run": "run-000002", "status": "running",
            "names": [name_done, "001_mvt_n48_t16.json"],
            "point_keys": [key_done, [H1, H2]],
            "states": ["done", "running"],
            "errors": {}, "created_at": record["created_at"],
            "updated_at": record["updated_at"],
        })

        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            status, doc = call(srv, "GET", "/v1/runs/run-000002")
            assert status == 200
            assert doc["status"] == "failed"
            assert doc["points"]["done"] == 1
            assert doc["points"]["failed"] == 1
            assert "interrupted" in doc["errors"]["001_mvt_n48_t16.json"]
            # The completed point still serves from disk.
            assert name_done in doc["documents"]
            # Recovery: resubmit -- the finished point is a workspace
            # hit, only genuinely new work would execute.
            final = wait_run(srv, submit_run(srv, h, [{}]))
            assert final["status"] == "done"
            _, state = call(srv, "GET", "/debug/state")
            assert state["serve"]["workspace_hits"] == 1
            assert state["serve"]["points_executed"] == 0
        finally:
            stop_server(srv, thread)


class TestWorkspaceIntrospection:
    def test_debug_state_reports_usage(self, tmp_path):
        srv, thread = boot_server(workspace=str(tmp_path))
        try:
            h = kernel_scenario(srv)
            wait_run(srv, submit_run(srv, h))
            _, state = call(srv, "GET", "/debug/state")
            usage = state["workspace"]
            assert usage["dir"] == str(tmp_path)
            assert usage["points"]["files"] == 1
            assert usage["runs"]["files"] == 1
            assert usage["bytes"] > 0
            assert state["serve"]["workspace_writes"] == 1
        finally:
            stop_server(srv, thread)

    def test_no_workspace_means_null_and_no_archives(self):
        srv, thread = boot_server()
        try:
            _, state = call(srv, "GET", "/debug/state")
            assert state["workspace"] is None
            _, listing = call(srv, "GET", "/v1/runs")
            assert "archived" not in listing
            status, doc = call(srv, "GET", "/v1/runs/run-000099")
            assert status == 404
        finally:
            stop_server(srv, thread)
