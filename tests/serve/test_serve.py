"""The ``repro serve`` HTTP surface and the long-lived-process sweep.

Covers the scenario/run split end to end -- concurrent identical
scenario POSTs share one trace build, runs produce the same stats
documents as direct :func:`~repro.sim.runner.run_point` calls, bad
configs are 400s, the queue bound is a 429 -- plus the regression
pins for the bug sweep that rode along: the ``_MEMO`` eviction bound,
``TraceCache.store`` tmp-file cleanup on every failure path, and
whitespace-tolerant ``REPRO_ENGINE`` parsing.
"""

import http.client
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.cpu.tiers import resolve_engine_tier
from repro.serve.app import ServerState, serve
from repro.serve.jobs import config_hash, normalize_config
from repro.serve.scenarios import ScenarioEntry, ScenarioSpec
from repro.sim import runner
from repro.sim.runner import SimPoint, TraceCache, point_document, run_point


def call(server, method, path, body=None, raw=None):
    """One request against an in-process server: ``(status, doc)``."""
    host, port = server.server_address[:2]
    payload = raw
    if payload is None and body is not None:
        payload = json.dumps(body).encode()
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        status = resp.status
    finally:
        conn.close()
    return status, json.loads(data)


def wait_run(server, run_id, timeout=60.0):
    """Poll one run to a terminal state; returns the final document.

    When the run has an ``out_dir``, also waits for the ``written``
    count (the server withholds it until the files are flushed).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = call(server, "GET", f"/v1/runs/{run_id}")
        assert status == 200
        if doc["status"] in ("done", "failed", "cancelled") and (
                "out_dir" not in doc or "written" in doc
                or doc["status"] != "done"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"{run_id} still {doc['status']!r} "
                         f"after {timeout}s")


def boot(**kwargs):
    """A serving server plus its serve_forever thread.

    Defaults to the thread executor: these tests exercise the HTTP
    surface and scheduler semantics, where in-process execution is
    fast and deterministic.  The process pool has its own suite
    (test_pool.py / test_workspace.py) booting with
    ``executor="process"``.
    """
    kwargs.setdefault("cache_dir", "off")
    kwargs.setdefault("executor", "thread")
    srv = serve(port=0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


@pytest.fixture
def server():
    """A two-worker server with the disk trace cache off."""
    srv, thread = boot(workers=2)
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=10)


@pytest.fixture
def idle_server():
    """Workers=0, queue_limit=1: points stay pending, bounds are tiny."""
    srv, thread = boot(workers=0, queue_limit=1)
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=10)


SCENARIO = {"kernel": "mvt", "n": 8, "tile": 4}


class TestScenarioDedup:
    def test_concurrent_identical_posts_build_once(self, server,
                                                   monkeypatch):
        """Two racing identical POSTs generate the trace exactly once."""
        import repro.serve.scenarios as scenarios_mod

        real = scenarios_mod.get_recording_with_source
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow(*args, **kwargs):
            calls.append(args)
            started.set()
            assert release.wait(30)
            return real(*args, **kwargs)

        monkeypatch.setattr(scenarios_mod,
                            "get_recording_with_source", slow)
        results = []

        def post():
            results.append(call(server, "POST", "/v1/scenarios",
                                SCENARIO))

        first = threading.Thread(target=post)
        first.start()
        assert started.wait(10)
        # The build is now parked inside the handler; the second
        # identical POST must dedup against it, not build again.
        second = threading.Thread(target=post)
        second.start()
        stats = server.state.stats
        deadline = time.monotonic() + 10
        while stats.scenarios_deduped == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert len(calls) == 1
        assert {status for status, _ in results} <= {200, 201}
        hashes = {doc["scenario"] for _, doc in results}
        assert len(hashes) == 1
        assert sum(doc["created"] for _, doc in results) == 1
        assert stats.scenarios_built == 1
        _, state = call(server, "GET", "/debug/state")
        assert state["serve"]["scenarios_deduped"] == 1

    def test_repeat_post_hits_registry(self, server):
        status_a, doc_a = call(server, "POST", "/v1/scenarios", SCENARIO)
        status_b, doc_b = call(server, "POST", "/v1/scenarios", SCENARIO)
        assert (status_a, doc_a["created"]) == (201, True)
        assert (status_b, doc_b["created"]) == (200, False)
        assert doc_a["scenario"] == doc_b["scenario"]
        assert server.state.stats.scenarios_built == 1
        assert server.state.stats.scenarios_cached == 1

    def test_get_scenario_by_hash(self, server):
        _, doc = call(server, "POST", "/v1/scenarios", SCENARIO)
        status, got = call(server, "GET",
                           f"/v1/scenarios/{doc['scenario']}")
        assert status == 200
        assert got["spec"] == {"kind": "kernel", "kernel": "mvt",
                               "n": 8, "tile": 4}
        assert call(server, "GET", "/v1/scenarios/ffff")[0] == 404


class TestShapes:
    def test_health(self, server):
        status, doc = call(server, "GET", "/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["workers"] == {"alive": 2, "configured": 2}
        assert doc["queue_depth"] == 0
        assert doc["engine_tier"] in ("object", "packed", "vector",
                                      "analytical")
        assert doc["uptime_s"] >= 0

    def test_debug_state(self, server):
        status, doc = call(server, "GET", "/debug/state")
        assert status == 200
        counters = doc["serve"]
        for name in ("requests", "scenarios_built", "scenarios_deduped",
                     "points_deduped", "queue_rejections",
                     "bad_requests", "internal_errors"):
            assert counters[name] >= 0
        assert doc["queue"] == {"depth": 0, "limit": 64}
        assert len(doc["workers"]) == 2
        assert all(w["alive"] for w in doc["workers"])
        assert doc["memo"]["entries"] <= doc["memo"]["limit"]
        assert doc["trace_cache"]["enabled"] == 0
        assert doc["scenarios"] == {}
        assert doc["runs"] == {}

    def test_serve_stats_is_a_stat_group(self):
        from repro.core.stats import stat_values
        from repro.serve.jobs import ServeStats

        stats = ServeStats()
        stats.bump("requests", 3)
        values = stat_values(stats)
        assert values["requests"] == 3
        assert "_lock" not in values
        assert dict(stats.stat_groups()) == {"serve": stats}


class TestValidation:
    @pytest.mark.parametrize("body", [
        {"kernel": "nope"},
        {"kernel": "mvt", "n": -3},
        {"kernel": "mvt", "n": True},
        {"kernel": "mvt", "bogus": 1},
        {"workload": "nope"},
        {"kind": "warp"},
        [1, 2],
    ])
    def test_bad_scenario_is_400(self, server, body):
        status, doc = call(server, "POST", "/v1/scenarios", body)
        assert status == 400
        assert "error" in doc

    def test_non_json_body_is_400(self, server):
        status, doc = call(server, "POST", "/v1/scenarios",
                           raw=b"not json")
        assert status == 400
        assert "error" in doc

    def test_unknown_scenario_run_is_404(self, server):
        status, doc = call(server, "POST", "/v1/runs",
                           {"scenario": "0" * 16, "configs": [{}]})
        assert status == 404
        assert "POST /v1/scenarios first" in doc["error"]

    @pytest.mark.parametrize("config", [
        {"scale": 0},
        {"scale": "big"},
        {"bogus": 1},
        {"systems": []},
        {"systems": ["warp"]},
        {"bandwidth": -1},
        {"llc_bytes": "lots"},
        "not a config",
    ])
    def test_bad_run_config_is_400(self, server, config):
        _, doc = call(server, "POST", "/v1/scenarios", SCENARIO)
        before = server.state.stats.bad_requests
        status, got = call(server, "POST", "/v1/runs",
                           {"scenario": doc["scenario"],
                            "configs": [config]})
        assert status == 400
        assert "error" in got
        assert server.state.stats.bad_requests == before + 1

    def test_unknown_route_is_404(self, server):
        assert call(server, "GET", "/v2/everything")[0] == 404
        assert call(server, "GET", "/v1/runs/run-999999")[0] == 404


class TestRunLifecycle:
    def test_run_matches_direct_run_point(self, server, tmp_path):
        _, sdoc = call(server, "POST", "/v1/scenarios", SCENARIO)
        out_dir = tmp_path / "served"
        status, rdoc = call(server, "POST", "/v1/runs",
                            {"scenario": sdoc["scenario"],
                             "configs": [{"scale": 16}],
                             "out_dir": str(out_dir)})
        assert status == 202
        assert (rdoc["points"], rdoc["new"], rdoc["deduped"]) == (1, 1, 0)
        final = wait_run(server, rdoc["run"])
        assert final["status"] == "done"
        name = "000_mvt_n8_t4.json"
        assert final["names"] == [name]
        got = final["documents"][name]
        assert got["manifest"]["kind"] == "servepoint"
        assert got["manifest"]["serve"]["scenario"] == sdoc["scenario"]

        want = point_document(run_point(
            SimPoint(kernel="mvt", n=8, tile=4, scale=16),
            cache=server.state.store.new_cache(), collect=True))
        assert got["stats"] == want["stats"]
        assert got["manifest"]["serve"]["base_kind"] == \
            want["manifest"]["kind"]

        # out_dir holds the exact write_point_documents byte format.
        assert final["written"] == 1
        on_disk = (out_dir / name).read_text()
        assert on_disk == json.dumps(got, sort_keys=True, indent=2) + "\n"

    def test_duplicate_run_shares_points(self, server):
        _, sdoc = call(server, "POST", "/v1/scenarios", SCENARIO)
        body = {"scenario": sdoc["scenario"], "configs": [{"scale": 16}]}
        _, first = call(server, "POST", "/v1/runs", body)
        _, second = call(server, "POST", "/v1/runs", body)
        assert (first["new"], first["deduped"]) == (1, 0)
        assert (second["new"], second["deduped"]) == (0, 1)
        assert second["run"] != first["run"]
        doc_a = wait_run(server, first["run"])
        doc_b = wait_run(server, second["run"])
        assert doc_a["documents"] == doc_b["documents"]
        assert server.state.stats.points_deduped == 1
        assert server.state.stats.points_executed == 1

    def test_points_form_addresses_multiple_scenarios(self, server):
        _, a = call(server, "POST", "/v1/scenarios", SCENARIO)
        _, b = call(server, "POST", "/v1/scenarios",
                    {"kernel": "mvt", "n": 8, "tile": 8})
        status, rdoc = call(server, "POST", "/v1/runs", {"points": [
            {"scenario": a["scenario"], "config": {"scale": 16}},
            {"scenario": b["scenario"], "config": {"scale": 16}},
        ]})
        assert status == 202
        final = wait_run(server, rdoc["run"])
        assert final["status"] == "done"
        assert final["names"] == ["000_mvt_n8_t4.json",
                                  "001_mvt_n8_t8.json"]
        assert len(final["documents"]) == 2

    def test_suite_scenario_runs_as_single_tenant_corun(self, server):
        _, sdoc = call(server, "POST", "/v1/scenarios",
                       {"workload": "mcf", "accesses": 400,
                        "footprint_div": 64})
        status, rdoc = call(server, "POST", "/v1/runs",
                            {"scenario": sdoc["scenario"],
                             "configs": [{"scale": 16}]})
        assert status == 202
        final = wait_run(server, rdoc["run"])
        assert final["status"] == "done"
        (doc,) = final["documents"].values()
        assert doc["manifest"]["serve"]["base_kind"] == "corunpoint"


class TestQueueAndCancel:
    def test_queue_bound_is_429(self, idle_server):
        _, sdoc = call(idle_server, "POST", "/v1/scenarios", SCENARIO)
        status, doc = call(idle_server, "POST", "/v1/runs",
                           {"scenario": sdoc["scenario"],
                            "configs": [{"scale": 16}, {"scale": 24}]})
        assert status == 429
        assert "queue full" in doc["error"]
        assert idle_server.state.stats.queue_rejections == 1
        # The rejected submission must not leak partial state.
        assert idle_server.state.scheduler.queue_depth() == 0
        assert call(idle_server, "GET", "/v1/runs")[1] == {"runs": {}}

    def test_cancel_pending_run(self, idle_server):
        _, sdoc = call(idle_server, "POST", "/v1/scenarios", SCENARIO)
        _, rdoc = call(idle_server, "POST", "/v1/runs",
                       {"scenario": sdoc["scenario"],
                        "configs": [{"scale": 16}]})
        assert rdoc["status"] == "queued"
        assert idle_server.state.scheduler.queue_depth() == 1
        status, doc = call(idle_server, "DELETE",
                           f"/v1/runs/{rdoc['run']}")
        assert (status, doc["status"]) == (200, "cancelled")
        final = call(idle_server, "GET", f"/v1/runs/{rdoc['run']}")[1]
        assert final["status"] == "cancelled"
        assert "cancelled" in str(final["errors"])
        assert idle_server.state.scheduler.queue_depth() == 0
        assert idle_server.state.stats.runs_cancelled == 1

    def test_health_degraded_without_workers(self, idle_server):
        status, doc = call(idle_server, "GET", "/health")
        assert status == 200      # zero configured == zero required
        assert doc["workers"] == {"alive": 0, "configured": 0}

    def test_resubmit_after_cancel_reenqueues(self, idle_server):
        """A cancelled point must not swallow later identical work.

        Pre-fix, the dedup table matched the dead cancelled entry:
        the second run reported new=0, nothing was queued, and its
        progress said 'queued' forever.
        """
        _, sdoc = call(idle_server, "POST", "/v1/scenarios", SCENARIO)
        body = {"scenario": sdoc["scenario"], "configs": [{"scale": 16}]}
        _, first = call(idle_server, "POST", "/v1/runs", body)
        call(idle_server, "DELETE", f"/v1/runs/{first['run']}")
        assert idle_server.state.scheduler.queue_depth() == 0
        status, second = call(idle_server, "POST", "/v1/runs", body)
        assert status == 202
        assert (second["new"], second["deduped"]) == (1, 0)
        assert second["status"] == "queued"
        assert idle_server.state.scheduler.queue_depth() == 1
        # The first run's story is unchanged by the retry.
        old = call(idle_server, "GET", f"/v1/runs/{first['run']}")[1]
        assert old["status"] == "cancelled"

    def test_failed_point_retry_does_not_rewrite_history(
            self, idle_server):
        """A retried point gets a fresh entry; the run that recorded
        the failure keeps reporting it (no retroactive 'queued')."""
        sched = idle_server.state.scheduler
        _, sdoc = call(idle_server, "POST", "/v1/scenarios", SCENARIO)
        body = {"scenario": sdoc["scenario"], "configs": [{"scale": 16}]}
        _, first = call(idle_server, "POST", "/v1/runs", body)
        run_a = sched.get_run(first["run"])
        with sched._lock:
            (pe,) = run_a.entries
            pe.state = "failed"
            pe.error = "RuntimeError: injected"
            pe.done.set()
            sched._pending -= 1
        doc_a = call(idle_server, "GET", f"/v1/runs/{first['run']}")[1]
        assert doc_a["status"] == "failed"      # terminal, not 'queued'
        status, second = call(idle_server, "POST", "/v1/runs", body)
        assert status == 202
        assert (second["new"], second["deduped"]) == (1, 0)
        # The retry owns a different entry; run A still shows failed.
        run_b = sched.get_run(second["run"])
        assert run_b.entries[0] is not pe
        doc_a = call(idle_server, "GET", f"/v1/runs/{first['run']}")[1]
        assert doc_a["status"] == "failed"
        assert doc_a["points"]["failed"] == 1
        assert "injected" in str(doc_a["errors"])


class TestBodyPlumbing:
    """Hostile Content-Length values must not park handler threads."""

    def _request_without_body(self, server, content_length):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.putrequest("POST", "/v1/scenarios")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(content_length))
            conn.endheaders()
            resp = conn.getresponse()
            doc = json.loads(resp.read())
            return resp.status, resp.getheader("Connection"), doc
        finally:
            conn.close()

    def test_negative_content_length_is_400(self, server):
        # Pre-fix: rfile.read(-5) reads until EOF, blocking the
        # keep-alive handler thread until the client gives up.
        status, connection, doc = self._request_without_body(server, -5)
        assert status == 400
        assert "Content-Length" in doc["error"]
        assert connection == "close"

    def test_oversize_body_closes_connection(self, server):
        from repro.serve.app import MAX_BODY_BYTES

        status, connection, doc = self._request_without_body(
            server, MAX_BODY_BYTES + 1)
        assert status == 413
        # The body was never read; a kept-alive connection would
        # desync on the next request, so the server must close it.
        assert connection == "close"


class TestOutDirPolicy:
    def test_dotdot_out_dir_is_400(self, idle_server, tmp_path):
        _, sdoc = call(idle_server, "POST", "/v1/scenarios", SCENARIO)
        status, doc = call(idle_server, "POST", "/v1/runs",
                           {"scenario": sdoc["scenario"],
                            "configs": [{"scale": 16}],
                            "out_dir": str(tmp_path / ".." / "escape")})
        assert status == 400
        assert ".." in doc["error"]

    def test_out_root_rejects_absolute_paths(self, tmp_path):
        srv, thread = boot(workers=0, out_root=str(tmp_path))
        try:
            _, sdoc = call(srv, "POST", "/v1/scenarios", SCENARIO)
            status, doc = call(srv, "POST", "/v1/runs",
                               {"scenario": sdoc["scenario"],
                                "configs": [{"scale": 16}],
                                "out_dir": "/tmp/anywhere"})
            assert status == 400
            assert "out-root" in doc["error"]
        finally:
            srv.shutdown()
            srv.close()
            thread.join(timeout=10)

    def test_out_root_confines_writes(self, tmp_path):
        srv, thread = boot(workers=2, out_root=str(tmp_path))
        try:
            _, sdoc = call(srv, "POST", "/v1/scenarios", SCENARIO)
            status, rdoc = call(srv, "POST", "/v1/runs",
                                {"scenario": sdoc["scenario"],
                                 "configs": [{"scale": 16}],
                                 "out_dir": "sub/run"})
            assert status == 202
            final = wait_run(srv, rdoc["run"])
            assert final["status"] == "done"
            assert final["written"] == 1
            name = final["names"][0]
            assert (tmp_path / "sub" / "run" / name).is_file()
        finally:
            srv.shutdown()
            srv.close()
            thread.join(timeout=10)

    def test_resolve_out_dir_unit(self, tmp_path):
        from repro.serve.app import resolve_out_dir

        assert resolve_out_dir("/tmp/x", None) == Path("/tmp/x")
        assert resolve_out_dir("sub", tmp_path) == tmp_path / "sub"
        with pytest.raises(ConfigurationError, match="\\.\\."):
            resolve_out_dir("a/../b", None)
        with pytest.raises(ConfigurationError, match="relative"):
            resolve_out_dir(str(tmp_path / "abs"), tmp_path)


class TestMemoBoundRegression:
    """The regen paths must respect the ``_MEMO`` size bound."""

    def test_memo_put_holds_bound(self):
        saved = dict(runner._MEMO)
        runner._MEMO.clear()
        try:
            for i in range(runner._MEMO_LIMIT + 3):
                runner._memo_put(f"k{i}", object())
                assert len(runner._MEMO) <= runner._MEMO_LIMIT
            # Oldest evicted first.
            assert set(runner._MEMO) == {
                f"k{i}" for i in range(3, runner._MEMO_LIMIT + 3)}
            # Replacing a resident key must not evict anything.
            runner._memo_put(f"k{runner._MEMO_LIMIT + 2}", object())
            assert len(runner._MEMO) == runner._MEMO_LIMIT
        finally:
            runner._MEMO.clear()
            runner._MEMO.update(saved)

    def test_memo_put_is_thread_safe(self):
        """Concurrent eviction at the bound must not KeyError.

        The serve worker pool and scenario-build handler threads hit
        the memo together; pre-lock, two threads racing the eviction
        loop could both pick the same victim and the loser's pop blew
        up as a failed point.
        """
        saved = dict(runner._MEMO)
        runner._MEMO.clear()
        errors = []

        def hammer(tid):
            try:
                for i in range(400):
                    runner._memo_put(f"t{tid}-{i % 7}", object())
            except Exception as exc:     # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert errors == []
            assert len(runner._MEMO) <= runner._MEMO_LIMIT
        finally:
            runner._MEMO.clear()
            runner._MEMO.update(saved)

    def test_no_direct_memo_insertions(self):
        """Every insertion goes through ``_memo_put`` -- a direct
        ``_MEMO[...] = ...`` (the regen-path bug) bypasses eviction."""
        import ast

        src = Path(runner.__file__).read_text(encoding="utf-8")
        stores = [
            node for node in ast.walk(ast.parse(src))
            if isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "_MEMO"
                    for t in node.targets)
        ]
        assert len(stores) == 1      # the one inside _memo_put itself


class TestTraceCacheTmpRegression:
    """``store`` must never strand ``.trace.tmp`` files."""

    def _recording(self):
        return runner.record_trace("mvt", 4, 4)

    def test_oserror_during_write_leaves_no_tmp(self, tmp_path,
                                                monkeypatch):
        cache = TraceCache(tmp_path)
        rec = self._recording()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.sim.runner.pickle.dump", boom)
        cache.store("k", rec)        # swallowed, like before
        assert list(tmp_path.glob("*.trace.tmp")) == []
        assert not (tmp_path / "k.trace").exists()

    def test_non_oserror_still_cleans_tmp(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        rec = self._recording()

        def boom(*args, **kwargs):
            raise RuntimeError("interrupted mid-pickle")

        monkeypatch.setattr("repro.sim.runner.pickle.dump", boom)
        with pytest.raises(RuntimeError):
            cache.store("k", rec)
        # Pre-fix only OSError cleaned up; this tmp file was stranded.
        assert list(tmp_path.glob("*.trace.tmp")) == []

    def test_successful_store_round_trips(self, tmp_path):
        cache = TraceCache(tmp_path)
        rec = self._recording()
        cache.store("k", rec)
        assert list(tmp_path.glob("*.trace.tmp")) == []
        assert cache.load("k") is not None

    def test_sweep_removes_only_stale_tmp(self, tmp_path):
        cache = TraceCache(tmp_path)
        stale = tmp_path / "dead.trace.tmp"
        fresh = tmp_path / "live.trace.tmp"
        stale.write_bytes(b"x")
        fresh.write_bytes(b"x")
        old = time.time() - 2 * TraceCache.STALE_TMP_S
        os.utime(stale, (old, old))
        assert cache.sweep_stale_tmp() == 1
        assert not stale.exists()
        assert fresh.exists()

    def test_store_sweeps_stale_tmp_once(self, tmp_path):
        stale = tmp_path / "dead.trace.tmp"
        stale.write_bytes(b"x")
        old = time.time() - 2 * TraceCache.STALE_TMP_S
        os.utime(stale, (old, old))
        cache = TraceCache(tmp_path)
        cache.store("k", self._recording())
        assert not stale.exists()
        assert cache.load("k") is not None


class TestEngineEnvRegression:
    """``REPRO_ENGINE`` must tolerate whitespace, like ``REPRO_JOBS``."""

    @pytest.mark.parametrize("value,want", [
        ("packed", "packed"),
        ("  packed\n", "packed"),
        (" vector ", "vector"),
        ("   ", "packed"),
        ("", "packed"),
    ])
    def test_resolve_strips(self, monkeypatch, value, want):
        monkeypatch.setenv("REPRO_ENGINE", value)
        assert resolve_engine_tier() == want

    def test_bad_tier_still_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp9")
        with pytest.raises(ConfigurationError):
            resolve_engine_tier()

    def test_server_refuses_to_boot_on_bad_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp9")
        with pytest.raises(ConfigurationError):
            ServerState(workers=0)


class TestSpecAndConfigUnits:
    def _entry(self, kind="kernel"):
        spec = (ScenarioSpec(kind="kernel", workload="mvt", n=8, tile=4)
                if kind == "kernel" else
                ScenarioSpec(kind="suite", workload="mcf", n=400,
                             tile=64))
        return ScenarioEntry(spec=spec, hash="h", trace_key="k",
                             source="generated", events=0, setup_calls=0,
                             build_wall_s=0.0, created_at=0.0,
                             cache_counters={})

    def test_hash_ignores_request_key_order(self):
        a = ScenarioSpec.from_request({"kernel": "mvt", "n": 8,
                                       "tile": 4})
        b = ScenarioSpec.from_request({"tile": 4, "n": 8,
                                       "kernel": "mvt"})
        assert a.scenario_hash == b.scenario_hash
        assert a.trace_cache_key == b.trace_cache_key

    def test_kind_inferred_from_workload_key(self):
        spec = ScenarioSpec.from_request({"workload": "mcf"})
        assert spec.kind == "suite"
        assert ScenarioSpec.from_request({"kernel": "mvt"}).kind == \
            "kernel"

    def test_config_defaults_are_canonical(self):
        entry = self._entry()
        assert normalize_config(entry, None) == \
            normalize_config(entry, {})
        full = normalize_config(entry, {"scale": 32, "llc_bytes": None,
                                        "bandwidth": 1.0,
                                        "systems": ["baseline", "xmem"]})
        assert config_hash(full) == config_hash(normalize_config(
            entry, {}))

    def test_suite_config_rejects_foreign_tenants(self):
        entry = self._entry("suite")
        with pytest.raises(ConfigurationError, match="1-tenant"):
            normalize_config(entry, {"xmem_tenants": [1]})
        assert normalize_config(entry, {"xmem_tenants": []}) \
            ["xmem_tenants"] == []

    def test_engine_is_a_per_point_config_knob(self):
        # A valid tier is accepted and becomes part of the point
        # identity: the same scenario under two engines is two points.
        plain = normalize_config(self._entry(), {})
        vector = normalize_config(self._entry(), {"engine": "vector"})
        assert plain["engine"] is None
        assert vector["engine"] == "vector"
        assert config_hash(plain) != config_hash(vector)
        # Whitespace normalizes like the CLI/env spelling does.
        assert normalize_config(
            self._entry(), {"engine": " vector "})["engine"] == "vector"

    def test_unknown_engine_tier_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            normalize_config(self._entry(), {"engine": "warp"})
        with pytest.raises(ConfigurationError, match="engine"):
            normalize_config(self._entry(), {"engine": 3})


SPEC_SCENARIO = {
    "kind": "workload", "name": "servespec", "seed": 5,
    "regions": [{"name": "r", "bytes": 8192}],
    "atoms": [{"name": "a", "region": "r", "reuse": 200}],
    "phases": [{"kind": "hot_set", "region": "r", "accesses": 300,
                "hot_lines": 4, "write_frac": 0.3}],
}

CSV_IMPORT = {
    "format": "csv", "name": "servecsv",
    "text": "0x1000,r,8\n0x1040,w\n0x1080,r,4,2\n",
}


class TestSpecScenarios:
    """Declarative workload specs through the HTTP surface (the
    ISSUE 9 serve regression: bodies that fit no known scenario form
    must be an explicit 400, and spec bodies reject unknown fields)."""

    @pytest.mark.parametrize("body", [
        {"bogus": 1},
        {},
        {"name": "x"},
    ])
    def test_uninferable_body_is_400(self, server, body):
        status, doc = call(server, "POST", "/v1/scenarios", body)
        assert status == 400
        assert "cannot infer scenario kind" in doc["error"]

    @pytest.mark.parametrize("body,fragment", [
        # Inferred spec body with a stray top-level field.
        ({**SPEC_SCENARIO, "typo_field": 1}, "unknown keys"),
        # Wrapped form tolerates only {"kind", "spec"}.
        ({"kind": "spec", "spec": SPEC_SCENARIO, "extra": 1},
         "unknown spec-scenario keys"),
        # Nested junk inside a phase.
        ({**SPEC_SCENARIO,
          "phases": [{"kind": "hot_set", "region": "r",
                      "accesses": 10, "warp": 9}]}, "unknown keys"),
        # Import with a server-side path: never resolved by serve.
        ({**CSV_IMPORT, "path": "/etc/passwd"}, "unknown keys"),
    ])
    def test_unknown_spec_fields_are_400(self, server, body, fragment):
        status, doc = call(server, "POST", "/v1/scenarios", body)
        assert status == 400
        assert fragment in doc["error"]

    def test_hash_is_spec_content_hash(self, server):
        from repro.scenarios import canonicalize, spec_hash

        _, bare = call(server, "POST", "/v1/scenarios", SPEC_SCENARIO)
        _, wrapped = call(server, "POST", "/v1/scenarios",
                          {"kind": "spec", "spec": SPEC_SCENARIO})
        want = spec_hash(canonicalize(SPEC_SCENARIO))
        assert bare["scenario"] == want
        assert wrapped["scenario"] == want
        assert wrapped["created"] is False  # deduped onto the first

    def test_get_by_hash_shows_canonical_spec(self, server):
        _, doc = call(server, "POST", "/v1/scenarios", SPEC_SCENARIO)
        status, got = call(server, "GET",
                           f"/v1/scenarios/{doc['scenario']}")
        assert status == 200
        assert got["spec"]["kind"] == "workload"
        assert got["spec"]["name"] == "servespec"
        assert got["spec"]["version"] == 1

    def test_import_text_not_echoed_back(self, server):
        _, doc = call(server, "POST", "/v1/scenarios", CSV_IMPORT)
        _, got = call(server, "GET",
                      f"/v1/scenarios/{doc['scenario']}")
        n = len(CSV_IMPORT["text"])
        assert got["spec"]["text"] == f"<{n} chars inlined>"
        assert got["spec"]["format"] == "csv-v1"

    def test_spec_run_matches_direct_scenario_point(self, server):
        from repro.scenarios import canonical_json, canonicalize
        from repro.sim.runner import ScenarioPoint, run_scenario_point

        _, sdoc = call(server, "POST", "/v1/scenarios", SPEC_SCENARIO)
        status, rdoc = call(server, "POST", "/v1/runs",
                            {"scenario": sdoc["scenario"],
                             "configs": [{"scale": 16}]})
        assert status == 202
        final = wait_run(server, rdoc["run"])
        assert final["status"] == "done"
        name = f"000_scn_servespec_{sdoc['scenario'][:8]}.json"
        assert final["names"] == [name]
        got = final["documents"][name]
        assert got["manifest"]["kind"] == "servepoint"
        assert got["manifest"]["serve"]["base_kind"] == "scenariopoint"
        assert got["manifest"]["scenario"]["hash"] == sdoc["scenario"]

        want = point_document(run_scenario_point(
            ScenarioPoint(
                spec_json=canonical_json(canonicalize(SPEC_SCENARIO)),
                scale=16),
            cache=server.state.store.new_cache(), collect=True))
        assert got["stats"] == want["stats"]

    def test_spec_config_rejects_suite_knobs(self, server):
        _, sdoc = call(server, "POST", "/v1/scenarios", SPEC_SCENARIO)
        status, doc = call(server, "POST", "/v1/runs",
                           {"scenario": sdoc["scenario"],
                            "configs": [{"accesses": 100}]})
        assert status == 400
        assert "unknown" in doc["error"]
